"""Columnar Stage-2 kernel: lowering, backends, knob, and fallbacks.

Three contracts, each pinned independently:

* **Lowering** — :func:`repro.sim.kernel.columns.lower_stream` must
  reproduce the batch engine's scalar shared pass column for column
  (blocks, set indices, partial tags, sampler sets, prefetch flags,
  and every deduplicated static feature slot).
* **Replay** — both kernel backends (the exec-specialized numpy loop
  and the flat-array numba kernel, exercised undecorated so the test
  runs without numba installed) must finish bit-identical to
  :class:`~repro.sim.llc.LLCSimulator`: outcomes, stats, policy
  counters, sampler entries, and perceptron weights.  A hypothesis
  lockstep drive over adversarial random streams backs the fixed
  workloads.
* **Selection** — ``REPRO_STAGE2_KERNEL`` resolves per the knob
  table; a requested-but-missing backend degrades one tier with a
  one-line stderr notice, never an exception; unsupported cache
  preconditions make the kernel decline so the batch engine falls
  back to the Python replay with identical results.
"""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.config import TINY
from repro.core.features import parse_feature_set, random_feature_set
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.presets import TABLE_1A_SPECS, TABLE_1B_SPECS
from repro.sim import kernel as kernel_mod
from repro.sim.batch import BatchLLCSimulator
from repro.sim.hierarchy import UpperLevels
from repro.sim.llc import LLCAccess, LLCSimulator
from repro.traces.workloads import build_segments

np = pytest.importorskip("numpy")

from repro.sim.kernel import columns as columns_mod  # noqa: E402
from repro.sim.kernel import numba_backend, numpy_backend  # noqa: E402

LLC_BYTES = TINY.hierarchy.llc_bytes
WAYS = TINY.hierarchy.llc_ways
NUM_SETS = LLC_BYTES // (WAYS * 64)
ACCESSES = 2_000


@pytest.fixture(scope="module")
def stage1():
    segment = build_segments("soplex", LLC_BYTES, ACCESSES)[0]
    upper = UpperLevels(TINY.hierarchy).run(segment.trace)
    return upper.llc_stream, segment.trace.pcs


def _configs(seed=7, k=4, default_policy="mdpp"):
    rng = random.Random(seed)
    feature_sets = [
        parse_feature_set(TABLE_1A_SPECS),
        parse_feature_set(TABLE_1B_SPECS),
    ]
    while len(feature_sets) < k:
        feature_sets.append(random_feature_set(rng))
    placements = (15, 13, 10) if default_policy == "mdpp" else (3, 2, 1)
    return [
        MPPPBConfig(features=features, default_policy=default_policy,
                    placements=placements)
        for features in feature_sets[:k]
    ]


def _batch(configs):
    policies = [MPPPBPolicy(NUM_SETS, WAYS, c) for c in configs]
    return BatchLLCSimulator(LLC_BYTES, WAYS, policies)


def _lower(sim, stream, pcs):
    first = sim.policies[0].sampler
    return columns_mod.lower_stream(
        stream, pcs, sim.num_sets, first.mapper._stride,
        first.mapper.sampler_sets, first.tag_bits, sim._slots,
        sim._needs_h,
    )


def _sequential(stream, pcs, config, warmup):
    policy = MPPPBPolicy(NUM_SETS, WAYS, config)
    sim = LLCSimulator(LLC_BYTES, WAYS, policy)
    result = sim.run(stream, pc_trace=pcs, warmup=warmup)
    return result, policy


def _sampler_state(policy):
    return [
        [(e.tag, tuple(e.indices), e.confidence) for e in entries]
        for entries in policy.sampler._sets
    ]


def _assert_identical(result, policy, seq_result, seq_policy):
    assert result.outcomes == seq_result.outcomes
    assert result.stats == seq_result.stats
    assert result.warm_stats == seq_result.warm_stats
    assert policy.bypasses == seq_policy.bypasses
    assert policy.promotions_suppressed == seq_policy.promotions_suppressed
    assert policy.sampler.trainings_live == seq_policy.sampler.trainings_live
    assert policy.sampler.trainings_dead == seq_policy.sampler.trainings_dead
    assert _sampler_state(policy) == _sampler_state(seq_policy)
    assert policy.predictor._weights == seq_policy.predictor._weights


# -- lowering round trip ---------------------------------------------------


def test_columns_match_shared_pass(stage1):
    """Vectorized lowering == the batch engine's scalar shared pass."""
    stream, pcs = stage1
    sim = _batch(_configs(k=4))
    blocks, set_idxs, tags, samp_idxs, prefetch, slot_values = (
        sim._shared_pass(stream, pcs)
    )
    cols = _lower(sim, stream, pcs)
    assert cols.n == len(stream)
    assert cols.blocks.tolist() == list(blocks)
    assert cols.set_idxs.tolist() == list(set_idxs)
    assert cols.tags.tolist() == list(tags)
    assert cols.samp_idxs.tolist() == list(samp_idxs)
    assert cols.prefetch.tolist() == list(prefetch)
    per_access = list(zip(*(col.tolist() for col in cols.cols)))
    assert per_access == slot_values


def test_columns_empty_history_and_stream():
    sim = _batch(_configs(k=2))
    cols = _lower(sim, [], [])
    assert cols.n == 0
    assert cols.as_lists()[0] == []
    access = LLCAccess(pc=0x4000, block=17, offset=8, is_write=False,
                       is_prefetch=False, mem_index=0, instr_index=0)
    blocks, *_rest, slot_values = sim._shared_pass([access], [])
    cols = _lower(sim, [access], [])
    assert cols.blocks.tolist() == list(blocks)
    assert list(zip(*(c.tolist() for c in cols.cols))) == slot_values


def test_mix64_array_matches_scalar():
    from repro.util.hashing import mix64

    raw = [0, 1, 0xDEADBEEF, (1 << 63) + 12345, 2**64 - 1]
    mixed = columns_mod.mix64_array(np.array(raw, dtype=np.uint64))
    assert mixed.tolist() == [mix64(v) for v in raw]


# -- lockstep replay -------------------------------------------------------


def _synthetic_stream(picks):
    """Build an LLC stream + PC trace from hypothesis-drawn tuples."""
    stream = []
    pcs = []
    for i, (pc, block, offset, pf) in enumerate(picks):
        pcs.append(pc)
        stream.append(LLCAccess(pc=pc, block=block, offset=offset,
                                is_write=False, is_prefetch=pf,
                                mem_index=i, instr_index=i))
    return stream, pcs


_access_st = st.tuples(
    st.integers(min_value=0, max_value=2**40).map(lambda v: v << 2),
    # Blocks from a small window so sets conflict, hit, and evict.
    st.integers(min_value=0, max_value=NUM_SETS * (WAYS + 4)),
    st.integers(min_value=0, max_value=63),
    st.booleans(),
)


class TestLockstep:
    @settings(max_examples=40, deadline=None)
    @given(picks=st.lists(_access_st, min_size=1, max_size=120),
           warmup=st.integers(min_value=0, max_value=130),
           seed=st.integers(min_value=0, max_value=2**16),
           default_policy=st.sampled_from(["mdpp", "srrip"]))
    def test_numpy_kernel_lockstep(self, picks, warmup, seed,
                                   default_policy):
        """Random streams: numpy kernel == LLCSimulator, per access."""
        stream, pcs = _synthetic_stream(picks)
        configs = _configs(seed=seed, k=2, default_policy=default_policy)
        sim = _batch(configs)
        cols = _lower(sim, stream, pcs)
        results = numpy_backend.replay_all(sim, cols, warmup)
        assert results is not None
        for config, policy, result in zip(configs, sim.policies, results):
            seq_result, seq_policy = _sequential(stream, pcs, config,
                                                 warmup)
            _assert_identical(result, policy, seq_result, seq_policy)

    @pytest.mark.parametrize("default_policy", ["mdpp", "srrip"])
    def test_numba_semantics_lockstep(self, stage1, default_policy):
        """The numba kernel's semantics, run undecorated, match the
        sequential simulator on a real workload — so the JIT leg in CI
        only re-proves compilation, not logic."""
        stream, pcs = stage1
        configs = _configs(k=3, default_policy=default_policy)
        sim = _batch(configs)
        cols = _lower(sim, stream, pcs)
        results = numba_backend.replay_all(
            sim, cols, warmup=500, kernel=numba_backend._kernel_py)
        assert results is not None
        for config, policy, result in zip(configs, sim.policies, results):
            seq_result, seq_policy = _sequential(stream, pcs, config, 500)
            _assert_identical(result, policy, seq_result, seq_policy)


# -- backend selection and fallbacks ---------------------------------------


@pytest.fixture
def fresh_notices(monkeypatch):
    """Reset the once-per-process notice dedup so tests can observe it."""
    monkeypatch.setattr(kernel_mod, "_notices_emitted", set())


class TestKnob:
    def test_disabled_values(self, monkeypatch):
        for value in ("off", "0", "false", "no", "none", "OFF"):
            monkeypatch.setenv("REPRO_STAGE2_KERNEL", value)
            assert kernel_mod.stage2_kernel_backend() == "off"

    def test_auto_prefers_best_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_STAGE2_KERNEL", raising=False)
        resolved = kernel_mod.stage2_kernel_backend()
        if kernel_mod._numba_available():
            assert resolved == "numba"
        else:
            assert resolved == "numpy"  # numpy importorskip'd above

    def test_unknown_value_degrades_to_auto(self, monkeypatch,
                                            fresh_notices, capsys):
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", "gpu")
        auto = kernel_mod.stage2_kernel_backend()
        monkeypatch.delenv("REPRO_STAGE2_KERNEL")
        assert auto == kernel_mod.stage2_kernel_backend()
        assert "unknown REPRO_STAGE2_KERNEL" in capsys.readouterr().err

    def test_missing_numba_falls_back_to_numpy(self, monkeypatch,
                                               fresh_notices, capsys):
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", "numba")
        monkeypatch.setattr(kernel_mod, "_numba_available", lambda: False)
        assert kernel_mod.stage2_kernel_backend() == "numpy"
        err = capsys.readouterr().err
        assert "numba is not installed" in err
        assert err.count("\n") == 1  # exactly one line
        # Dedup: a second resolution stays silent.
        assert kernel_mod.stage2_kernel_backend() == "numpy"
        assert capsys.readouterr().err == ""

    def test_missing_numpy_disables_kernel(self, monkeypatch,
                                           fresh_notices, capsys):
        monkeypatch.setattr(kernel_mod, "_np", None)
        monkeypatch.setattr(kernel_mod, "_numba_available", lambda: False)
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", "numpy")
        assert kernel_mod.stage2_kernel_backend() == "off"
        assert "falling back to the Python replay" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_STAGE2_KERNEL")
        assert kernel_mod.stage2_kernel_backend() == "off"
        assert kernel_mod.replay_batch(None, [], [], 0, "numpy") is None

    def test_available_backends_report(self):
        report = kernel_mod.available_backends()
        assert report["numpy"] is True
        assert isinstance(report["numba"], bool)


class TestFallbacks:
    def test_non_prefix_validity_declines(self, stage1):
        """Oddly-shaped cache state makes the kernel decline, and the
        batch engine's Python fallback still reproduces the sequential
        results from that same state."""
        stream, pcs = stage1
        config = _configs(k=1)[0]
        sim = _batch([config])
        # Install into way 1 of set 0, leaving way 0 invalid: validity
        # is no longer a prefix, which the columnar fill cursor cannot
        # represent.
        sim.caches[0].install(0, 1, NUM_SETS * 5)
        assert numpy_backend.prefix_fills(sim.caches[0]) is None
        cols = _lower(sim, stream, pcs)
        assert numpy_backend.replay_all(sim, cols, 100) is None
        results = sim.run(stream, pc_trace=pcs, warmup=100)

        seq_policy = MPPPBPolicy(NUM_SETS, WAYS, config)
        seq_sim = LLCSimulator(LLC_BYTES, WAYS, seq_policy)
        seq_sim.cache.install(0, 1, NUM_SETS * 5)
        seq_result = seq_sim.run(stream, pc_trace=pcs, warmup=100)
        _assert_identical(results[0], sim.policies[0], seq_result,
                          seq_policy)

    def test_batch_run_uses_kernel(self, stage1, monkeypatch):
        """BatchLLCSimulator.run really routes through the kernel."""
        stream, pcs = stage1
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", "numpy")
        calls = []
        original = numpy_backend.replay_all

        def spy(sim, cols, warmup):
            calls.append(warmup)
            return original(sim, cols, warmup)

        monkeypatch.setattr(numpy_backend, "replay_all", spy)
        sim = _batch(_configs(k=2))
        sim.run(stream, pc_trace=pcs, warmup=250)
        assert calls == [250]
