"""Tests for the binary trace/Stage-1 artifact cache.

Covers the framing format (round trips, corruption tolerance, endian
field), the :class:`ResultStore` raw-bytes interface, the artifact
hit counters surfaced in :class:`ExecReport`, and the monotonic
eviction order of the store's LRU log.
"""

import os

from repro.config import TINY
from repro.exec import ParallelRunner, SingleCell, TraceSpec
from repro.exec import runner as exec_runner
from repro.exec.artifacts import (
    MAGIC,
    ArtifactCache,
    pack_artifact,
    pack_segments,
    pack_upper,
    stage1_key,
    trace_key,
    unpack_artifact,
    unpack_segments,
    unpack_upper,
)
from repro.exec.store import ResultStore
from repro.sim.hierarchy import UpperLevels
from repro.traces.workloads import build_segments

ACCESSES = 1_500


def _segments(benchmark="gamess"):
    return build_segments(benchmark, TINY.hierarchy.llc_bytes, ACCESSES)


def _upper(segment):
    return UpperLevels(TINY.hierarchy).run(segment.trace)


class TestFraming:
    def test_artifact_round_trip(self):
        scalars = {"alpha": 3, "beta": "x"}
        arrays = [("a", "Q", [1, 2, 3]), ("b", "B", [0, 1])]
        blob = pack_artifact("demo", scalars, arrays)
        assert blob.startswith(MAGIC)
        unpacked = unpack_artifact(blob, "demo")
        assert unpacked is not None
        got_scalars, got_arrays = unpacked
        assert got_scalars == scalars
        assert got_arrays["a"].tolist() == [1, 2, 3]
        assert got_arrays["b"].tolist() == [0, 1]

    def test_kind_mismatch_is_a_miss(self):
        blob = pack_artifact("demo", {}, {})
        assert unpack_artifact(blob, "other") is None

    def test_corruption_is_a_miss(self):
        blob = pack_artifact("demo", {"n": 1}, {})
        assert unpack_artifact(b"", "demo") is None
        assert unpack_artifact(b"XXXX" + blob[4:], "demo") is None
        assert unpack_artifact(blob[:-1], "demo") is None
        assert unpack_artifact(blob + b"\x00", "demo") is None

    def test_segments_round_trip(self):
        segments = _segments("soplex")
        restored = unpack_segments(pack_segments(segments))
        assert restored is not None
        assert len(restored) == len(segments)
        for got, want in zip(restored, segments):
            assert got.name == want.name
            assert got.weight == want.weight
            assert got.trace.pcs == want.trace.pcs
            assert got.trace.addresses == want.trace.addresses
            assert got.trace.writes == want.trace.writes
            assert got.trace.gaps == want.trace.gaps
            assert got.trace.deps == want.trace.deps

    def test_upper_round_trip(self):
        segment = _segments("soplex")[0]
        upper = _upper(segment)
        restored = unpack_upper(pack_upper(upper))
        assert restored is not None
        assert restored.num_instructions == upper.num_instructions
        assert restored.l1_hits == upper.l1_hits
        assert restored.l2_misses == upper.l2_misses
        assert restored.prefetches_issued == upper.prefetches_issued
        assert restored.service == upper.service
        assert restored.instr_indices == upper.instr_indices
        assert len(restored.llc_stream) == len(upper.llc_stream)
        for got, want in zip(restored.llc_stream, upper.llc_stream):
            assert got == want

    def test_keys_distinguish_payloads(self):
        base = {"benchmark": "gamess", "llc_bytes": 1, "accesses": 2}
        assert trace_key(base) != trace_key({**base, "accesses": 3})
        scope = {"llc_bytes": 1, "accesses": 2, "seed": 3}
        hierarchy = {"llc_ways": 16}
        key = stage1_key(scope, "gamess/0", hierarchy, True)
        assert key != stage1_key(scope, "gamess/1", hierarchy, True)
        assert key != stage1_key(scope, "gamess/0", hierarchy, False)


class TestStoreBytes:
    def test_bytes_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_bytes("ab" * 32) is None
        store.put_bytes("ab" * 32, b"\x01\x02")
        assert store.get_bytes("ab" * 32) == b"\x01\x02"

    def test_bytes_and_json_share_eviction(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        store.put_bytes("aa" * 32, b"a")
        store.put("bb" * 32, {"v": 1})
        store.put_bytes("cc" * 32, b"c")
        assert store.get_bytes("aa" * 32) is None  # oldest evicted
        assert store.get_bytes("cc" * 32) == b"c"

    def test_same_second_eviction_follows_insertion_order(self, tmp_path):
        """mtime granularity must not scramble LRU under fast writes.

        All three blobs land within the same second; the insertion log
        (not mtime) must decide which one is oldest.  Force identical
        mtimes to simulate a coarse-granularity filesystem.
        """
        store = ResultStore(tmp_path, max_entries=2)
        keys = ["aa" * 32, "bb" * 32, "cc" * 32]
        store.put_bytes(keys[0], b"0")
        store.put_bytes(keys[1], b"1")
        stamp = os.stat(store._bin_path(keys[0])).st_mtime
        for key in keys[:2]:
            os.utime(store._bin_path(key), (stamp, stamp))
        store.put_bytes(keys[2], b"2")
        os.utime(store._bin_path(keys[2]), (stamp, stamp))
        assert store.get_bytes(keys[0]) is None
        assert store.get_bytes(keys[1]) == b"1"
        assert store.get_bytes(keys[2]) == b"2"

    def test_touch_refreshes_log_order(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        keys = ["aa" * 32, "bb" * 32, "cc" * 32]
        store.put_bytes(keys[0], b"0")
        store.put_bytes(keys[1], b"1")
        store.get_bytes(keys[0])  # refresh: key 1 is now the LRU
        store.put_bytes(keys[2], b"2")
        assert store.get_bytes(keys[1]) is None
        assert store.get_bytes(keys[0]) == b"0"


class TestArtifactCache:
    def test_segment_store_hit_and_miss(self, tmp_path):
        cache = ArtifactCache(ResultStore(tmp_path))
        payload = {"benchmark": "gamess",
                   "llc_bytes": TINY.hierarchy.llc_bytes,
                   "accesses": ACCESSES, "seed": 2017}
        assert cache.load_segments(payload) is None
        assert cache.stats.trace_misses == 1
        segments = _segments()
        cache.store_segments(payload, segments)
        loaded = cache.load_segments(payload)
        assert cache.stats.trace_hits == 1
        assert [s.name for s in loaded] == [s.name for s in segments]

    def test_stage1_store_round_trip(self, tmp_path):
        cache = ArtifactCache(ResultStore(tmp_path))
        scope = {"llc_bytes": TINY.hierarchy.llc_bytes,
                 "accesses": ACCESSES, "seed": 2017}
        store = cache.stage1_store(scope, TINY.hierarchy, True)
        segment = _segments()[0]
        assert store.load(segment) is None
        upper = _upper(segment)
        store.save(segment, upper)
        loaded = store.load(segment)
        assert loaded is not None
        assert loaded.llc_stream == upper.llc_stream
        assert cache.stats.stage1_hits == 1
        assert cache.stats.stage1_misses == 1


class TestReportCounters:
    def _cell(self, policy):
        return SingleCell(
            trace=TraceSpec("gamess", TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )

    def test_warm_artifacts_counted_in_report(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run([self._cell("lru")], label="cold")
        cold = engine.last_report
        assert cold.trace_misses == 1
        assert cold.stage1_misses == 1
        assert cold.trace_hits == cold.stage1_hits == 0
        # A different policy misses the result cache; with the
        # in-process memos cleared (as in a fresh worker) the shared
        # stages must come from the artifact cache.
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine.run([self._cell("srrip")], label="warm")
        warm = engine.last_report
        assert warm.trace_hits == 1
        assert warm.stage1_hits == 1
        assert warm.trace_misses == warm.stage1_misses == 0
        assert "artifacts:" in warm.summary()

    def test_result_cache_hits_skip_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run([self._cell("lru")], label="cold")
        engine.run([self._cell("lru")], label="replay")
        replay = engine.last_report
        assert replay.hits == 1
        assert replay.artifact_lookups == 0
