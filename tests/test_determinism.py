"""Pinned-hash determinism regression tests.

The perf work (fused feature pipeline, artifact cache, array-backed
state) must never change simulation *results* — only how fast they
are produced.  These tests run a small reference workload and compare
a stable hash of the full result tables against hashes pinned when
the optimizations landed, across every execution mode: serial,
parallel, cold artifact cache, warm artifact cache, and with the
artifact layer disabled.

If a change legitimately alters simulation output (a modeling fix, a
new feature), re-pin the hashes below in the same commit and say why
in the commit message.  If you did not intend to change output, a
failure here means a bug.
"""

import pytest

from repro.config import TINY
from repro.exec import MixCell, ParallelRunner, SingleCell, SuiteSpec, TraceSpec
from repro.exec.cachekey import stable_hash
from repro.exec.store import ResultStore
from repro.traces.mixes import generate_mixes
from repro.traces.workloads import build_suite

ACCESSES = 2_500
BENCHMARKS = ("gamess", "soplex")
POLICIES = ("lru", "mpppb-1a", "srrip")

# Pinned on the tiny reference workload below.  Cold cache, warm
# cache, serial, parallel, and artifacts-off must all reproduce them.
SINGLE_HASH = "4f06a70f16f97bdb76676eef33c124e3b8115326498dff212deb7fd617cd5e75"
MIX_HASH = "bec8c2cfa975ef0b8cfff1a87c8ff4cb3e5bd2ef307d006b6c0d7e34e3c9426b"


def _single_cells():
    return [
        SingleCell(
            trace=TraceSpec(benchmark, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in POLICIES
        for benchmark in BENCHMARKS
    ]


def _mix_cells():
    suite_spec = SuiteSpec(TINY.hierarchy.llc_bytes, ACCESSES)
    suite = build_suite(TINY.hierarchy.llc_bytes, ACCESSES)
    segments = [s for name in sorted(suite) for s in suite[name]]
    mixes = generate_mixes(segments, 2)
    return [
        MixCell(
            suite=suite_spec,
            mix_name=mix.name,
            segment_names=tuple(s.name for s in mix.segments),
            policy="lru",
            hierarchy=TINY.multi_hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for mix in mixes
    ]


def _hashes(engine):
    singles = engine.run(_single_cells(), label="pin/single")
    mixes = engine.run(_mix_cells(), label="pin/mix")
    return (
        stable_hash({"results": [r.to_dict() for r in singles]}),
        stable_hash({"results": [r.to_dict() for r in mixes]}),
    )


def _assert_pinned(engine):
    single_hash, mix_hash = _hashes(engine)
    assert single_hash == SINGLE_HASH
    assert mix_hash == MIX_HASH


class TestPinnedHashes:
    def test_serial_no_store(self):
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))

    def test_parallel_no_store(self):
        _assert_pinned(ParallelRunner(jobs=2, store=None, verbose=False))

    def test_cold_then_warm_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        # Cold: every cell computes, artifacts are written.
        _assert_pinned(ParallelRunner(jobs=1, store=store, verbose=False))
        # Warm results: every cell replays from the result cache.
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        _assert_pinned(engine)
        assert engine.last_report.hits == engine.last_report.cells

    def test_warm_artifacts_cold_results(self, tmp_path):
        """Results recompute from cached trace/Stage-1 artifacts."""
        from repro.exec import runner as exec_runner

        store = ResultStore(tmp_path / "cache")
        _assert_pinned(ParallelRunner(jobs=1, store=store, verbose=False))
        # Drop the result blobs but keep artifacts; clear in-process
        # memos so Stage 1 genuinely reloads from disk.
        for blob in list(store.root.glob("??/*.json")):
            blob.unlink()
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        _assert_pinned(engine)
        assert engine.last_report.hits == 0

    def test_artifacts_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "off")
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        assert engine.artifact_root is None
        _assert_pinned(engine)

    @pytest.mark.parametrize("pipeline", ["fused", "legacy"])
    def test_both_feature_pipelines(self, pipeline, monkeypatch):
        monkeypatch.setenv("REPRO_FEATURE_PIPELINE", pipeline)
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))
