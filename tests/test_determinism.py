"""Pinned-hash determinism regression tests.

The perf work (fused feature pipeline, artifact cache, array-backed
state) must never change simulation *results* — only how fast they
are produced.  These tests run a small reference workload and compare
a stable hash of the full result tables against hashes pinned when
the optimizations landed, across every execution mode: serial,
parallel, cold artifact cache, warm artifact cache, and with the
artifact layer disabled.

If a change legitimately alters simulation output (a modeling fix, a
new feature), re-pin the hashes below in the same commit and say why
in the commit message.  If you did not intend to change output, a
failure here means a bug.
"""

import time

import pytest

from repro.config import TINY
from repro.exec import MixCell, ParallelRunner, SingleCell, SuiteSpec, TraceSpec
from repro.exec.cachekey import stable_hash
from repro.exec.store import ResultStore
from repro.sim.kernel import available_backends
from repro.traces.mixes import generate_mixes
from repro.traces.workloads import build_suite

ACCESSES = 2_500
BENCHMARKS = ("gamess", "soplex")
POLICIES = ("lru", "mpppb-1a", "srrip")

# Pinned on the tiny reference workload below.  Cold cache, warm
# cache, serial, parallel, and artifacts-off must all reproduce them.
SINGLE_HASH = "4f06a70f16f97bdb76676eef33c124e3b8115326498dff212deb7fd617cd5e75"
MIX_HASH = "bec8c2cfa975ef0b8cfff1a87c8ff4cb3e5bd2ef307d006b6c0d7e34e3c9426b"
# Feature-search pin: random search + hill climb on a fixed seed must
# produce these candidates and MPKIs whether Stage 2 replays candidates
# one at a time or through the shared-context batch engine.
SEARCH_HASH = "25451957fce2529e70cc7ebc80843c0475e3e04242d942b9d72584574e9534aa"

# Stage-2 kernel backends: "off" always exists (per-access Python
# replay); accelerated backends run wherever their import succeeds.
_AVAILABLE = available_backends()
_KERNEL_BACKENDS = ["off"] + [
    pytest.param(name,
                 marks=pytest.mark.skipif(not present,
                                          reason=f"{name} not installed"))
    for name, present in _AVAILABLE.items()
]


def _single_cells():
    return [
        SingleCell(
            trace=TraceSpec(benchmark, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in POLICIES
        for benchmark in BENCHMARKS
    ]


def _mix_cells():
    suite_spec = SuiteSpec(TINY.hierarchy.llc_bytes, ACCESSES)
    suite = build_suite(TINY.hierarchy.llc_bytes, ACCESSES)
    segments = [s for name in sorted(suite) for s in suite[name]]
    mixes = generate_mixes(segments, 2)
    return [
        MixCell(
            suite=suite_spec,
            mix_name=mix.name,
            segment_names=tuple(s.name for s in mix.segments),
            policy="lru",
            hierarchy=TINY.multi_hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for mix in mixes
    ]


def _hashes(engine):
    singles = engine.run(_single_cells(), label="pin/single")
    mixes = engine.run(_mix_cells(), label="pin/mix")
    return (
        stable_hash({"results": [r.to_dict() for r in singles]}),
        stable_hash({"results": [r.to_dict() for r in mixes]}),
    )


def _assert_pinned(engine):
    single_hash, mix_hash = _hashes(engine)
    assert single_hash == SINGLE_HASH
    assert mix_hash == MIX_HASH


class TestPinnedHashes:
    def test_serial_no_store(self):
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))

    def test_parallel_no_store(self):
        _assert_pinned(ParallelRunner(jobs=2, store=None, verbose=False))

    def test_cold_then_warm_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        # Cold: every cell computes, artifacts are written.
        _assert_pinned(ParallelRunner(jobs=1, store=store, verbose=False))
        # Warm results: every cell replays from the result cache.
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        _assert_pinned(engine)
        assert engine.last_report.hits == engine.last_report.cells

    def test_warm_artifacts_cold_results(self, tmp_path):
        """Results recompute from cached trace/Stage-1 artifacts."""
        from repro.exec import runner as exec_runner

        store = ResultStore(tmp_path / "cache")
        _assert_pinned(ParallelRunner(jobs=1, store=store, verbose=False))
        # Drop the result blobs but keep artifacts; clear in-process
        # memos so Stage 1 genuinely reloads from disk.
        for blob in list(store.root.glob("??/*.json")):
            blob.unlink()
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        _assert_pinned(engine)
        assert engine.last_report.hits == 0

    def test_artifacts_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "off")
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        assert engine.artifact_root is None
        _assert_pinned(engine)

    @pytest.mark.parametrize("pipeline", ["fused", "legacy"])
    def test_both_feature_pipelines(self, pipeline, monkeypatch):
        monkeypatch.setenv("REPRO_FEATURE_PIPELINE", pipeline)
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))

    @pytest.mark.parametrize("vector", ["on", "off"])
    def test_both_stage3_paths(self, vector, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE3_VECTOR", vector)
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))

    @pytest.mark.parametrize("backend", _KERNEL_BACKENDS)
    def test_stage2_kernel_backends(self, backend, monkeypatch):
        """Every Stage-2 kernel backend reproduces the pinned hashes."""
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", backend)
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False))


class TestFaultedPins:
    """Injected faults + recovery must reproduce the clean pins bit-for-bit.

    Cell seeding depends only on the cache key — never the attempt
    number, worker identity, or scheduling — so retried, requeued, and
    serially-degraded executions are exact reruns.
    """

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retried_raises_reproduce_pins(self, jobs, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        engine = ParallelRunner(jobs=jobs, store=None, verbose=False,
                                retries=2)
        _assert_pinned(engine)
        assert engine.last_report.retries > 0
        assert engine.last_report.failures == ()

    def test_worker_crashes_reproduce_pins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:every=3")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        engine = ParallelRunner(jobs=2, store=None, verbose=False, retries=1)
        _assert_pinned(engine)
        # every=3 selects one mix cell, so the (last) mix run really
        # did lose a worker and rebuild its pool.
        assert engine.last_report.pool_rebuilds >= 1
        assert engine.last_report.failures == ()


class TestFleetPins:
    """The worker-fleet backend moves execution into long-lived framed
    subprocesses — the transport must never touch results.  Pins must
    reproduce local vs fleet, cold vs warm, and through injected
    worker loss."""

    def test_fleet_matches_local_pins(self):
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet")
        _assert_pinned(engine)
        assert engine.last_report.backend == "fleet"

    def test_fleet_cold_then_warm_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        _assert_pinned(ParallelRunner(jobs=2, store=store, verbose=False,
                                      backend="fleet"))
        warm = ParallelRunner(jobs=2, store=store, verbose=False,
                              backend="fleet")
        _assert_pinned(warm)
        assert warm.last_report.hits == warm.last_report.cells

    def test_single_worker_fleet_matches(self):
        _assert_pinned(ParallelRunner(jobs=1, store=None, verbose=False,
                                      backend="fleet", workers="2"))

    def test_fleet_worker_loss_reproduces_pins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:every=3")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet", retries=1)
        _assert_pinned(engine)
        # The crash killed a live fleet worker mid-cell; the lost-frame
        # requeue + rebuild machinery recovered it exactly once.
        assert engine.last_report.pool_rebuilds >= 1
        assert engine.last_report.requeued >= 1
        assert engine.last_report.failures == ()


class TestSharedTierPins:
    """A result computed through one node's store must serve any other
    node as a shared-tier read-through hit, bit-identically."""

    def test_read_through_between_stores(self, tmp_path):
        from repro.exec.store import TieredResultStore

        cells = _single_cells()
        shared = tmp_path / "shared"
        first = ParallelRunner(
            jobs=2, verbose=False, backend="fleet",
            store=TieredResultStore(tmp_path / "node-a", shared))
        results = first.run(cells, label="pin/single")
        assert stable_hash({"results": [r.to_dict() for r in results]}) \
            == SINGLE_HASH
        assert first.last_report.store_shared_fills >= len(cells)

        # A different node: fresh local tier, same shared directory.
        second = ParallelRunner(
            jobs=2, verbose=False, backend="fleet",
            store=TieredResultStore(tmp_path / "node-b", shared))
        results = second.run(cells, label="pin/single")
        assert stable_hash({"results": [r.to_dict() for r in results]}) \
            == SINGLE_HASH
        report = second.last_report
        assert report.hits == report.cells
        assert report.store_shared_hits == len(cells)


class TestTelemetryPins:
    """Telemetry reads ``perf_counter`` and its own counters — never the
    ``random`` module or simulator state — so every pin must reproduce
    bit-for-bit with instrumentation recording."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pins_unchanged_with_telemetry(self, jobs, tmp_path):
        from repro import obs
        from repro.exec.store import ResultStore as Store

        obs.enable()
        try:
            store = Store(tmp_path / "cache")
            engine = ParallelRunner(jobs=jobs, store=store, verbose=False)
            _assert_pinned(engine)
            assert engine.last_events_path is not None
            assert engine.last_events_path.exists()
        finally:
            obs.disable()

    def test_search_pin_unchanged_with_telemetry(self):
        from repro import obs

        obs.enable()
        try:
            assert _search_hash() == SEARCH_HASH
        finally:
            obs.disable()


def _search_hash():
    from repro.search.evaluator import FeatureSetEvaluator
    from repro.search.hillclimb import hill_climb
    from repro.search.random_search import random_search
    from repro.traces.workloads import all_segments

    segments = all_segments(TINY.hierarchy.llc_bytes, ACCESSES,
                            names=["gamess", "soplex"])
    evaluator = FeatureSetEvaluator(segments, TINY.hierarchy,
                                    warmup_fraction=TINY.warmup_fraction)
    candidates = random_search(evaluator, num_sets=6, seed=123)
    refined = hill_climb(evaluator, candidates[0].features, steps=4,
                         seed=123)
    return stable_hash({
        "random": [[f.spec() for f in c.features] for c in candidates],
        "random_mpki": [c.mpki for c in candidates],
        "refined": [f.spec() for f in refined.features],
        "refined_mpki": refined.mpki,
    })


class TestGraphPins:
    """The experiment-graph scheduler changes *when* artifacts load or
    recompute — never what any cell computes — so the pins must hold
    with the planner on and off, serial and parallel, cold and warm."""

    @pytest.mark.parametrize("graph", ["on", "off"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pins_cold_and_warm(self, graph, jobs, tmp_path, monkeypatch):
        from repro.exec import runner as exec_runner

        monkeypatch.setenv("REPRO_GRAPH", graph)
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        store = ResultStore(tmp_path / "cache")
        # Cold: the planner sees an empty store and schedules computes.
        _assert_pinned(ParallelRunner(jobs=jobs, store=store, verbose=False))
        # Warm: materialized artifacts flip the plan toward loads.
        _assert_pinned(ParallelRunner(jobs=jobs, store=store, verbose=False))

    def test_search_pin_with_graph(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "on")
        assert _search_hash() == SEARCH_HASH


class TestChaosPins:
    """Network chaos (DESIGN.md §16) — dropped/duplicated/delayed/torn
    frames, one-way partitions, straggler hedging, and a dead shared
    tier — must reproduce the clean pins bit-for-bit, and the health
    layer must recover faster than the blunt instruments it augments."""

    def test_frame_drop_recovers_via_heartbeats(self, monkeypatch):
        # A dropped result frame leaves the slot busy-but-silent
        # forever: only the heartbeat timeout can notice (the worker
        # finished, so it is not even hung).
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "frame-drop:every=3")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet")
        _assert_pinned(engine)
        # every=3 selects at least one cell (the same selector the
        # crash:every=3 test relies on); its dropped frame was detected
        # by the heartbeat timeout and the cell requeued.
        report = engine.last_report
        assert report.hb_lost >= 1
        assert report.requeued >= 1
        assert report.failures == ()

    def test_torn_dup_and_delayed_frames_reproduce_pins(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            "frame-dup:every=3;frame-delay:every=4,seconds=0.3;"
            "frame-trunc:every=5")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet")
        _assert_pinned(engine)
        assert engine.last_report.failures == ()

    def test_heartbeat_beats_the_watchdog_on_a_hung_worker(self,
                                                           monkeypatch):
        # Acceptance check: with heartbeats on, a hung worker is
        # recovered in a couple of seconds — the generous cell watchdog
        # (the only line of defense before §16) never has to fire.
        cells = _single_cells()
        victim = stable_hash(cells[0].key_payload())
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            f"hb-loss:key={victim[:16]};hang:key={victim[:16]},seconds=600")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet", cell_timeout=120)
        started = time.monotonic()
        results = engine.run(cells, label="pin/single")
        wall = time.monotonic() - started
        assert stable_hash({"results": [r.to_dict() for r in results]}) \
            == SINGLE_HASH
        report = engine.last_report
        assert report.hb_lost >= 1
        assert report.requeued >= 1
        assert report.timeouts == 0   # the watchdog never fired
        assert report.failures == ()
        assert wall < 60.0            # well under the 120s watchdog

    def test_hedged_straggler_race_reproduces_pins(self, monkeypatch):
        cells = _single_cells()
        victim = stable_hash(cells[0].key_payload())
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"hang:key={victim[:16]},seconds=30")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet", hedge=2.0)
        started = time.monotonic()
        results = engine.run(cells, label="pin/single")
        wall = time.monotonic() - started
        assert stable_hash({"results": [r.to_dict() for r in results]}) \
            == SINGLE_HASH
        report = engine.last_report
        # The duplicate (attempt 2, which the times=1 hang rule skips)
        # won the race; the hung original was discarded, softly.
        assert report.hedges >= 1
        assert report.hedge_wins >= 1
        assert report.failures == ()
        assert wall < 20.0            # the clone rescued a 30s straggler

    def test_open_breaker_preserves_pins(self, tmp_path, monkeypatch):
        from repro.exec import faults
        from repro.exec.store import TieredResultStore

        monkeypatch.setenv("REPRO_FAULT_INJECT", "shared-fail")
        faults.reset_injection_state()
        store = TieredResultStore(tmp_path / "node", tmp_path / "shared")
        engine = ParallelRunner(jobs=2, store=store, verbose=False,
                                backend="fleet")
        _assert_pinned(engine)
        report = engine.last_report
        assert report.store_breaker_open
        assert report.store_shared_fills == 0
        assert "breaker=open" in report.summary()
        assert report.failures == ()
        # The local tier alone serves a fully warm rerun.
        warm = ParallelRunner(jobs=2, store=store, verbose=False,
                              backend="fleet")
        _assert_pinned(warm)
        assert warm.last_report.hits == warm.last_report.cells

    def test_search_pin_under_frame_chaos(self, monkeypatch):
        from repro.search.evaluator import FeatureSetEvaluator
        from repro.search.hillclimb import hill_climb
        from repro.search.random_search import random_search

        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "frame-drop:every=6")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                backend="fleet")
        spec = SuiteSpec(TINY.hierarchy.llc_bytes, ACCESSES,
                         names=("gamess", "soplex"))
        evaluator = FeatureSetEvaluator.from_spec(
            spec, TINY.hierarchy, warmup_fraction=TINY.warmup_fraction,
            executor=engine)
        candidates = random_search(evaluator, num_sets=6, seed=123)
        refined = hill_climb(evaluator, candidates[0].features, steps=4,
                             seed=123)
        assert stable_hash({
            "random": [[f.spec() for f in c.features] for c in candidates],
            "random_mpki": [c.mpki for c in candidates],
            "refined": [f.spec() for f in refined.features],
            "refined_mpki": refined.mpki,
        }) == SEARCH_HASH


class TestIngestPins:
    """Ingested-trace runs must be bit-identical across decode chunk
    sizes, serial vs parallel execution, and cold vs warm stores —
    chunking bounds resident decode state, never results, and the
    digest-keyed caches must replay exactly (chunk is not keyed, so a
    warm run with a *different* chunk size still hits every cell)."""

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        import gzip

        path = tmp_path_factory.mktemp("ingest") / "real.trace.gz"
        lines = []
        state = 0xDEADBEEF
        for _ in range(2_000):
            state = (state * 6364136223846793005
                     + 1442695040888963407) % (1 << 64)
            pc = 0x400 + 4 * (state % 97)
            addr = 0x10000 + 64 * ((state >> 16) % 512)
            rw = "w" if state % 5 == 0 else "r"
            lines.append(f"0x{pc:x} 0x{addr:x} {rw} {state % 3}")
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode()))
        return str(path)

    def _cells(self, trace_file, chunk):
        from repro.traces.ingest import resolve_ingest

        spec = resolve_ingest(trace_file, accesses=600, segments=2,
                              chunk=chunk)
        trace = TraceSpec(spec.name, TINY.hierarchy.llc_bytes, ACCESSES,
                          ingest=spec)
        return [
            SingleCell(trace=trace, policy=policy, hierarchy=TINY.hierarchy,
                       warmup_fraction=TINY.warmup_fraction)
            for policy in POLICIES
        ]

    @staticmethod
    def _clear_memos():
        from repro.exec import runner as exec_runner

        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()

    def _hash(self, engine, cells):
        results = engine.run(cells, label="pin/ingest")
        assert all(result is not None for result in results)
        return stable_hash({"results": [r.to_dict() for r in results]})

    def test_chunk_sizes_and_parallelism_agree(self, trace_file):
        hashes = set()
        for chunk, jobs in ((512, 1), (65536, 1), (512, 2)):
            self._clear_memos()
            engine = ParallelRunner(jobs=jobs, store=None, verbose=False)
            hashes.add(self._hash(engine, self._cells(trace_file, chunk)))
        assert len(hashes) == 1

    def test_cold_then_warm_store_across_chunks(self, trace_file, tmp_path):
        store = ResultStore(tmp_path / "cache")
        self._clear_memos()
        cold = self._hash(ParallelRunner(jobs=1, store=store, verbose=False),
                          self._cells(trace_file, 512))
        self._clear_memos()
        warm_engine = ParallelRunner(jobs=1, store=store, verbose=False)
        warm = self._hash(warm_engine, self._cells(trace_file, 65536))
        assert cold == warm
        assert warm_engine.last_report.hits == warm_engine.last_report.cells

    def test_warm_artifacts_cold_results(self, trace_file, tmp_path):
        """Results recompute from digest-keyed trace/Stage-1 artifacts."""
        store = ResultStore(tmp_path / "cache")
        self._clear_memos()
        cold = self._hash(ParallelRunner(jobs=1, store=store, verbose=False),
                          self._cells(trace_file, 512))
        for blob in list(store.root.glob("??/*.json")):
            blob.unlink()
        self._clear_memos()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        rebuilt = self._hash(engine, self._cells(trace_file, 65536))
        assert cold == rebuilt
        assert engine.last_report.hits == 0


class TestSearchPinned:
    @pytest.mark.parametrize("mode", ["on", "off"])
    def test_stage2_batch_modes(self, mode, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE2_BATCH", mode)
        assert _search_hash() == SEARCH_HASH

    @pytest.mark.parametrize("backend", _KERNEL_BACKENDS)
    def test_stage2_kernel_backends(self, backend, monkeypatch):
        """The batched search replay pins identically per kernel backend."""
        monkeypatch.setenv("REPRO_STAGE2_KERNEL", backend)
        assert _search_hash() == SEARCH_HASH
