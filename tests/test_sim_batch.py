"""Bit-identity tests for the batched Stage-2 replay engine.

The batched path must be a pure strength reduction over K sequential
:class:`~repro.sim.llc.LLCSimulator` replays: identical outcomes,
stats, policy counters, sampler training, and final perceptron
weights, for any mix of feature families (XOR'd and plain, history
depths, single-bit state features) and both default policies.
"""

import random

import pytest

from repro.config import TINY
from repro.core.features import (
    parse_feature_set,
    perturb_feature,
    random_feature_set,
)
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.presets import TABLE_1A_SPECS, TABLE_1B_SPECS
from repro.sim.batch import BatchLLCSimulator, stage2_batch_enabled
from repro.sim.hierarchy import UpperLevels
from repro.sim.llc import LLCSimulator
from repro.sim.single import SingleThreadRunner
from repro.traces.workloads import build_segments

LLC_BYTES = TINY.hierarchy.llc_bytes
WAYS = TINY.hierarchy.llc_ways
NUM_SETS = LLC_BYTES // (WAYS * 64)
ACCESSES = 2_500


@pytest.fixture(scope="module")
def stage1():
    """Stage-1 stream + PC trace for one benchmark segment."""
    segment = build_segments("soplex", LLC_BYTES, ACCESSES)[0]
    upper = UpperLevels(TINY.hierarchy).run(segment.trace)
    return upper, segment.trace


def _configs(seed=7, k=4, default_policy="mdpp"):
    """K candidate configs: two published tables plus random sets."""
    rng = random.Random(seed)
    feature_sets = [
        parse_feature_set(TABLE_1A_SPECS),
        parse_feature_set(TABLE_1B_SPECS),
    ]
    while len(feature_sets) < k:
        feature_sets.append(random_feature_set(rng))
    placements = (15, 13, 10) if default_policy == "mdpp" else (3, 2, 1)
    return [
        MPPPBConfig(features=features, default_policy=default_policy,
                    placements=placements)
        for features in feature_sets[:k]
    ]


def _sequential(upper, trace, config, warmup):
    policy = MPPPBPolicy(NUM_SETS, WAYS, config)
    sim = LLCSimulator(LLC_BYTES, WAYS, policy)
    result = sim.run(upper.llc_stream, pc_trace=trace.pcs, warmup=warmup)
    return result, policy


def _assert_identical(batch_result, batch_policy, seq_result, seq_policy):
    assert batch_result.outcomes == seq_result.outcomes
    assert batch_result.stats == seq_result.stats
    assert batch_result.warm_stats == seq_result.warm_stats
    assert batch_policy.bypasses == seq_policy.bypasses
    assert (batch_policy.promotions_suppressed
            == seq_policy.promotions_suppressed)
    assert (batch_policy.sampler.trainings_live
            == seq_policy.sampler.trainings_live)
    assert (batch_policy.sampler.trainings_dead
            == seq_policy.sampler.trainings_dead)
    assert batch_policy.predictor._weights == seq_policy.predictor._weights


@pytest.mark.parametrize("default_policy", ["mdpp", "srrip"])
@pytest.mark.parametrize("warmup_fraction", [0.0, 0.25])
def test_batch_matches_sequential(stage1, default_policy, warmup_fraction):
    upper, trace = stage1
    warmup = int(len(upper.llc_stream) * warmup_fraction)
    configs = _configs(default_policy=default_policy)
    policies = [MPPPBPolicy(NUM_SETS, WAYS, c) for c in configs]
    batch = BatchLLCSimulator(LLC_BYTES, WAYS, policies)
    results = batch.run(upper.llc_stream, pc_trace=trace.pcs, warmup=warmup)
    assert len(results) == len(configs)
    for config, policy, result in zip(configs, policies, results):
        seq_result, seq_policy = _sequential(upper, trace, config, warmup)
        _assert_identical(result, policy, seq_result, seq_policy)


def test_batch_of_one_and_duplicates(stage1):
    """K=1 and repeated candidates are legal and still exact."""
    upper, trace = stage1
    config = _configs(k=1)[0]
    for k in (1, 3):
        policies = [MPPPBPolicy(NUM_SETS, WAYS, config) for _ in range(k)]
        batch = BatchLLCSimulator(LLC_BYTES, WAYS, policies)
        results = batch.run(upper.llc_stream, pc_trace=trace.pcs, warmup=10)
        seq_result, seq_policy = _sequential(upper, trace, config, 10)
        for policy, result in zip(policies, results):
            _assert_identical(result, policy, seq_result, seq_policy)


def test_batch_many_random_candidates(stage1):
    """A hill-climb-shaped neighborhood: base set plus perturbations."""
    upper, trace = stage1
    rng = random.Random(2017)
    base = list(parse_feature_set(TABLE_1A_SPECS))
    feature_sets = [tuple(base)]
    for _ in range(5):
        mutated = list(base)
        victim = rng.randrange(len(mutated))
        mutated[victim] = perturb_feature(mutated[victim], rng)
        feature_sets.append(tuple(mutated))
    configs = [MPPPBConfig(features=fs) for fs in feature_sets]
    policies = [MPPPBPolicy(NUM_SETS, WAYS, c) for c in configs]
    batch = BatchLLCSimulator(LLC_BYTES, WAYS, policies)
    results = batch.run(upper.llc_stream, pc_trace=trace.pcs, warmup=50)
    for config, policy, result in zip(configs, policies, results):
        seq_result, seq_policy = _sequential(upper, trace, config, 50)
        _assert_identical(result, policy, seq_result, seq_policy)


def test_batch_rejects_non_mpppb():
    from repro.cache.replacement.lru import LRUPolicy

    with pytest.raises(TypeError):
        BatchLLCSimulator(LLC_BYTES, WAYS, [LRUPolicy(NUM_SETS, WAYS)])


def test_batch_rejects_mismatched_geometry():
    config = _configs(k=1)[0]
    wrong = MPPPBPolicy(NUM_SETS * 2, WAYS, config)
    with pytest.raises(ValueError):
        BatchLLCSimulator(LLC_BYTES, WAYS, [wrong])


def test_stage2_batch_knob(monkeypatch):
    monkeypatch.delenv("REPRO_STAGE2_BATCH", raising=False)
    assert stage2_batch_enabled()
    for value in ("off", "0", "false"):
        monkeypatch.setenv("REPRO_STAGE2_BATCH", value)
        assert not stage2_batch_enabled()
    monkeypatch.setenv("REPRO_STAGE2_BATCH", "on")
    assert stage2_batch_enabled()


def test_run_segment_batch_matches_run_segment():
    """The runner-level batch path returns identical SegmentResults."""
    hierarchy = TINY.hierarchy
    runner = SingleThreadRunner(hierarchy, warmup_fraction=0.25)
    segment = build_segments("lbm", LLC_BYTES, ACCESSES)[0]
    configs = _configs(seed=11, k=4)
    batched = runner.run_segment_batch(segment, configs)
    for config, result in zip(configs, batched):
        sequential = runner.run_segment(
            segment, lambda num_sets, ways, c=config: MPPPBPolicy(
                num_sets, ways, c)
        )
        assert result == sequential
