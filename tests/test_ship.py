"""Tests for the SHiP extension baseline."""

from repro.cache.access import AccessContext
from repro.cache.replacement.lru import LRUPolicy
from repro.predictors.ship import SHCT, SHiPPolicy
from repro.sim.llc import LLCAccess, LLCSimulator


def stream(blocks, pcs):
    return [
        LLCAccess(pc=pcs[i], block=b, offset=0, is_write=False,
                  is_prefetch=False, mem_index=i, instr_index=4 * i)
        for i, b in enumerate(blocks)
    ]


class TestSHCT:
    def test_initial_counters_predict_reuse(self):
        shct = SHCT()
        assert shct.predicts_reuse(0x400)

    def test_train_dead_flips_prediction(self):
        shct = SHCT()
        shct.train_dead(0x400)
        assert not shct.predicts_reuse(0x400)

    def test_counters_saturate(self):
        shct = SHCT(counter_max=7)
        idx = shct.index(0x400)
        for _ in range(20):
            shct.train_hit(0x400)
        assert shct.counters[idx] == 7
        for _ in range(20):
            shct.train_dead(0x400)
        assert shct.counters[idx] == 0

    def test_index_in_range(self):
        shct = SHCT(table_bits=10)
        assert 0 <= shct.index(0xDEADBEEF) < 1024


class TestSHiPPolicy:
    def test_dead_signature_inserted_distant(self):
        policy = SHiPPolicy(4, 4, sampler_sets=4)
        for _ in range(10):
            policy.shct.train_dead(0x900)
        ctx = AccessContext(pc=0x900, address=0, block=0, offset=0)
        policy.on_fill(0, 1, ctx)
        assert policy._srrip.rrpvs[0][1] == policy._srrip.rrpv_max

    def test_reused_signature_inserted_long(self):
        policy = SHiPPolicy(4, 4, sampler_sets=4)
        ctx = AccessContext(pc=0x500, address=0, block=0, offset=0)
        policy.on_fill(0, 1, ctx)
        assert policy._srrip.rrpvs[0][1] == policy._srrip.insert_rrpv

    def test_learns_streaming_pc(self):
        policy = SHiPPolicy(4, 4, sampler_sets=4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        blocks = list(range(400))
        sim.run(stream(blocks, [0x900] * len(blocks)))
        assert not policy.shct.predicts_reuse(0x900)

    def test_hot_pc_stays_reused(self):
        policy = SHiPPolicy(4, 4, sampler_sets=4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        blocks = [0, 4, 8] * 200
        sim.run(stream(blocks, [0x500] * len(blocks)))
        assert policy.shct.predicts_reuse(0x500)

    def test_beats_lru_on_mixed_traffic(self):
        # Hot loop + cold stream through the same sets: SHiP keeps the
        # loop resident by inserting the stream distant.
        blocks, pcs = [], []
        cold = iter(range(100, 100_000))
        for _ in range(300):
            for b in (0, 4, 8):
                blocks.append(b)
                pcs.append(0x500)
            for _ in range(2):
                blocks.append(next(cold) * 4)
                pcs.append(0x900)
        ship_sim = LLCSimulator(4 * 4 * 64, 4, SHiPPolicy(4, 4, sampler_sets=4))
        ship = ship_sim.run(stream(blocks, pcs))
        lru_sim = LLCSimulator(4 * 4 * 64, 4, LRUPolicy(4, 4))
        lru = lru_sim.run(stream(blocks, pcs))
        assert ship.stats.hits > lru.stats.hits

    def test_registry_exposes_ship(self):
        from repro.policies import make_policy

        policy = make_policy("ship", 64, 16)
        assert isinstance(policy, SHiPPolicy)
