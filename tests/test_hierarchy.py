"""Tests for the upper-level hierarchy driver and the LLC simulator."""

import pytest

from repro.cache.access import PREFETCH_PC
from repro.cache.replacement.lru import LRUPolicy
from repro.sim.hierarchy import SERVICE_L1, SERVICE_L2, HierarchyConfig, UpperLevels
from repro.sim.llc import LLCAccess, LLCSimulator
from repro.traces.trace import Trace

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=64, llc_ways=16)


def make_trace(addresses, pc=0x400, gap=3):
    return Trace.from_accesses(
        "t", [(pc + 4 * (i % 8), addr, False, gap) for i, addr in enumerate(addresses)]
    )


class TestHierarchyConfig:
    def test_block_shift(self):
        assert HierarchyConfig().block_shift == 6

    def test_llc_bytes(self):
        assert HierarchyConfig(llc_kib=2048).llc_bytes == 2 * 1024 * 1024


class TestUpperLevels:
    def test_repeated_access_served_by_l1(self):
        trace = make_trace([0x1000] * 10)
        result = UpperLevels(SMALL, prefetch=False).run(trace)
        assert result.service[0] >= 0          # first access reaches LLC
        assert result.service[1:] == [SERVICE_L1] * 9

    def test_l2_serves_l1_evictions(self):
        # Working set bigger than L1 (4 KB) but within L2 (16 KB).
        addresses = [0x1000 + 64 * i for i in range(128)] * 2
        result = UpperLevels(SMALL, prefetch=False).run(trace := make_trace(addresses))
        second_pass = result.service[128:]
        assert SERVICE_L2 in second_pass
        assert all(s < 0 for s in second_pass)  # nothing reaches the LLC again

    def test_llc_stream_contains_compulsory_misses(self):
        addresses = [0x1000 + 64 * i for i in range(50)]
        result = UpperLevels(SMALL, prefetch=False).run(make_trace(addresses))
        demand = [a for a in result.llc_stream if not a.is_prefetch]
        assert len(demand) == 50
        assert [a.block for a in demand] == [(0x1000 + 64 * i) >> 6 for i in range(50)]

    def test_instruction_indices_monotone(self):
        addresses = [0x1000 + 64 * i for i in range(20)]
        result = UpperLevels(SMALL, prefetch=False).run(make_trace(addresses, gap=3))
        assert result.instr_indices == [3 + 4 * i for i in range(20)]
        assert result.num_instructions == 20 * 4

    def test_prefetches_carry_fake_pc(self):
        addresses = [0x1000 + 64 * i for i in range(50)]
        result = UpperLevels(SMALL, prefetch=True).run(make_trace(addresses))
        prefetches = [a for a in result.llc_stream if a.is_prefetch]
        assert prefetches, "a sequential stream must trigger prefetches"
        assert all(a.pc == PREFETCH_PC for a in prefetches)

    def test_prefetch_reduces_llc_demand_traffic(self):
        addresses = [0x100000 + 64 * i for i in range(400)]
        with_pf = UpperLevels(SMALL, prefetch=True).run(make_trace(addresses))
        without_pf = UpperLevels(SMALL, prefetch=False).run(make_trace(addresses))
        demand_with = sum(1 for a in with_pf.llc_stream if not a.is_prefetch)
        demand_without = sum(1 for a in without_pf.llc_stream if not a.is_prefetch)
        assert demand_with < demand_without

    def test_prefetched_block_not_refetched(self):
        # A prefetch fill lands in L2, so the later demand access to the
        # same block is an L2 hit, not a second LLC access.
        addresses = [0x1000 + 64 * i for i in range(50)]
        result = UpperLevels(SMALL, prefetch=True).run(make_trace(addresses))
        blocks = [a.block for a in result.llc_stream]
        assert len(blocks) == len(set(blocks))

    def test_warmup_boundary(self):
        addresses = [0x1000 + 64 * i for i in range(50)]
        result = UpperLevels(SMALL, prefetch=False).run(make_trace(addresses))
        boundary = result.llc_warmup_boundary(25)
        assert result.llc_stream[boundary].mem_index >= 25
        assert result.llc_stream[boundary - 1].mem_index < 25

    def test_warmup_boundary_past_end(self):
        addresses = [0x1000]
        result = UpperLevels(SMALL, prefetch=False).run(make_trace(addresses))
        assert result.llc_warmup_boundary(10) == len(result.llc_stream)

    def test_l1_stats_accumulate(self):
        trace = make_trace([0x1000] * 10)
        result = UpperLevels(SMALL, prefetch=False).run(trace)
        assert result.l1_hits == 9
        assert result.l1_misses == 1


class TestLLCSimulator:
    def _stream(self, blocks):
        return [
            LLCAccess(pc=0x400, block=b, offset=0, is_write=False,
                      is_prefetch=False, mem_index=i, instr_index=i * 4)
            for i, b in enumerate(blocks)
        ]

    def test_geometry_mismatch_rejected(self):
        policy = LRUPolicy(8, 16)
        with pytest.raises(ValueError):
            LLCSimulator(64 * 1024, 16, policy)  # 64 sets != 8

    def test_warmup_split(self):
        policy = LRUPolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        result = sim.run(self._stream([0, 0, 0, 0]), warmup=2)
        assert result.warm_stats.accesses == 2
        assert result.stats.accesses == 2
        assert result.stats.hits == 2

    def test_outcomes_cover_full_stream(self):
        policy = LRUPolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        result = sim.run(self._stream([0, 1, 0]), warmup=1)
        assert result.outcomes == [False, False, True]

    def test_prefetch_excluded_from_demand_stats(self):
        policy = LRUPolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        stream = self._stream([0, 1])
        stream[1].is_prefetch = True
        result = sim.run(stream)
        assert result.stats.accesses == 2
        assert result.stats.demand_accesses == 1
        assert result.stats.demand_misses == 1

    def test_eviction_counted(self):
        policy = LRUPolicy(1, 2)
        sim = LLCSimulator(1 * 2 * 64, 2, policy)
        result = sim.run(self._stream([0, 1, 2]))
        assert result.stats.evictions == 1

    def test_lastmiss_bit_visible_to_policy(self):
        seen = []

        class Spy(LRUPolicy):
            def on_access(self, set_idx, ctx, hit, way):
                seen.append(ctx.last_was_miss)

        sim = LLCSimulator(1 * 4 * 64, 4, Spy(1, 4))
        sim.run(self._stream([0, 0, 0]))
        assert seen == [False, True, False]

    def test_mru_hit_flag(self):
        seen = []

        class Spy(LRUPolicy):
            def on_access(self, set_idx, ctx, hit, way):
                seen.append(ctx.is_mru_hit)

        sim = LLCSimulator(1 * 4 * 64, 4, Spy(1, 4))
        sim.run(self._stream([0, 1, 1, 0]))
        # Access 2 hits block 1 at MRU; access 3 hits block 0 at LRU side.
        assert seen == [False, False, True, False]
