"""Tests for FastLRUCache and SetAssociativeCache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import FastLRUCache, SetAssociativeCache


class TestFastLRUCache:
    def test_geometry(self):
        cache = FastLRUCache(32 * 1024, ways=8)
        assert cache.num_sets == 64

    def test_rejects_ragged_capacity(self):
        with pytest.raises(ValueError):
            FastLRUCache(1000, ways=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            FastLRUCache(3 * 64 * 4, ways=4)

    def test_miss_then_hit(self):
        cache = FastLRUCache(4 * 64 * 2, ways=2)
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        # 1 set x 2 ways: blocks map to set 0 when num_sets == 1.
        cache = FastLRUCache(2 * 64, ways=2)
        cache.access(0)
        cache.access(4)
        cache.access(0)      # 0 becomes MRU; LRU is 4
        cache.access(8)      # evicts 4
        assert cache.access(0) is True
        assert cache.access(4) is False

    def test_probe_does_not_disturb(self):
        cache = FastLRUCache(2 * 64, ways=2)
        cache.access(0)
        cache.access(4)      # LRU = 0
        assert cache.probe(0) is True
        cache.access(8)      # must evict 0 (probe must not have promoted it)
        assert cache.probe(0) is False
        assert cache.hits == 0

    def test_fill_installs_without_stats(self):
        cache = FastLRUCache(2 * 64, ways=2)
        cache.fill(12)
        assert cache.probe(12)
        assert cache.hits == 0 and cache.misses == 0

    def test_fill_existing_is_noop(self):
        cache = FastLRUCache(2 * 64, ways=2)
        cache.access(0)
        cache.access(4)
        cache.fill(4)        # already resident: recency must not change
        cache.access(8)      # evicts 0 (still LRU)
        assert not cache.probe(0)

    def test_different_sets_do_not_interfere(self):
        cache = FastLRUCache(4 * 64 * 1, ways=1)  # 4 sets, direct mapped
        for block in range(4):
            cache.access(block)
        assert all(cache.probe(block) for block in range(4))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_ways(self, blocks):
        cache = FastLRUCache(4 * 64 * 4, ways=4)
        for block in blocks:
            cache.access(block)
        for cache_set in cache._sets:
            assert len(cache_set) <= 4

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
    def test_matches_reference_lru(self, blocks):
        """Dictionary-trick LRU must agree with an explicit-list LRU."""
        ways, sets = 4, 4
        cache = FastLRUCache(sets * 64 * ways, ways=ways)
        reference = [[] for _ in range(sets)]
        for block in blocks:
            ref_set = reference[block % sets]
            expected_hit = block in ref_set
            if expected_hit:
                ref_set.remove(block)
            elif len(ref_set) >= ways:
                ref_set.pop(0)
            ref_set.append(block)
            assert cache.access(block) is expected_hit


class TestSetAssociativeCache:
    def test_lookup_miss_on_empty(self):
        cache = SetAssociativeCache(4 * 64 * 2, ways=2)
        assert cache.lookup(0, 123) == -1

    def test_install_and_lookup(self):
        cache = SetAssociativeCache(4 * 64 * 2, ways=2)
        set_idx = cache.set_index(8)
        cache.install(set_idx, 0, 8)
        assert cache.lookup(set_idx, 8) == 0

    def test_install_returns_evicted_tag(self):
        cache = SetAssociativeCache(4 * 64 * 2, ways=2)
        assert cache.install(0, 1, 16) is None
        assert cache.install(0, 1, 32) == 16

    def test_invalid_way_scans_in_order(self):
        cache = SetAssociativeCache(4 * 64 * 4, ways=4)
        assert cache.invalid_way(2) == 0
        cache.install(2, 0, 2)
        assert cache.invalid_way(2) == 1

    def test_invalid_way_full_set(self):
        cache = SetAssociativeCache(1 * 64 * 2, ways=2)
        cache.install(0, 0, 10)
        cache.install(0, 1, 20)
        assert cache.invalid_way(0) == -1

    def test_invalidate(self):
        cache = SetAssociativeCache(4 * 64 * 2, ways=2)
        cache.install(1, 0, 9)
        cache.invalidate(1, 0)
        assert cache.lookup(1, 9) == -1
        assert cache.invalid_way(1) == 0

    def test_resident_blocks(self):
        cache = SetAssociativeCache(1 * 64 * 4, ways=4)
        cache.install(0, 0, 8)
        cache.install(0, 2, 12)
        assert cache.resident_blocks(0) == [(0, 8), (2, 12)]

    def test_set_index_uses_low_bits(self):
        cache = SetAssociativeCache(8 * 64 * 2, ways=2)
        assert cache.set_index(0b10110) == 0b110
