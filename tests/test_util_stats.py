"""Unit and property tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    RocPoint,
    _roc_curve_scalar,
    arithmetic_mean,
    auc,
    geometric_mean,
    mpki,
    roc_curve,
    roc_curve_fast,
    s_curve,
    weighted_speedup,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-9


class TestMpki:
    def test_basic(self):
        assert mpki(misses=50, instructions=10_000) == pytest.approx(5.0)

    def test_zero_misses(self):
        assert mpki(0, 1000) == 0.0

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            mpki(1, 0)


class TestWeightedSpeedup:
    def test_identity(self):
        # Threads running at their standalone IPC give N (4 for 4 cores).
        assert weighted_speedup([1.0] * 4, [1.0] * 4) == pytest.approx(4.0)

    def test_slowdown(self):
        assert weighted_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])


class TestSCurve:
    def test_ascending_default(self):
        assert s_curve([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_descending(self):
        assert s_curve([3.0, 1.0, 2.0], descending=True) == [3.0, 2.0, 1.0]


class TestRocCurve:
    def _sample(self):
        confidences = [-10, -5, 0, 5, 10, 15]
        labels = [False, False, False, True, True, True]
        return confidences, labels

    def test_perfect_separation(self):
        conf, labels = self._sample()
        [point] = roc_curve(conf, labels, thresholds=[2])
        assert point.true_positive_rate == 1.0
        assert point.false_positive_rate == 0.0

    def test_threshold_too_low_flags_everything(self):
        conf, labels = self._sample()
        [point] = roc_curve(conf, labels, thresholds=[-100])
        assert point.true_positive_rate == 1.0
        assert point.false_positive_rate == 1.0

    def test_rates_monotone_in_threshold(self):
        conf = list(range(-20, 21))
        labels = [c > 3 for c in conf]
        points = roc_curve(conf, labels, thresholds=list(range(-25, 25, 5)))
        fprs = [p.false_positive_rate for p in points]
        tprs = [p.true_positive_rate for p in points]
        assert fprs == sorted(fprs, reverse=True)
        assert tprs == sorted(tprs, reverse=True)

    def test_fast_matches_reference(self):
        import random

        rng = random.Random(7)
        conf = [rng.uniform(-50, 50) for _ in range(500)]
        labels = [rng.random() < 0.4 for _ in range(500)]
        thresholds = list(range(-40, 41, 10))
        slow = roc_curve(conf, labels, thresholds)
        fast = roc_curve_fast(conf, labels, thresholds)
        for a, b in zip(slow, fast):
            assert a.false_positive_rate == pytest.approx(b.false_positive_rate)
            assert a.true_positive_rate == pytest.approx(b.true_positive_rate)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_curve([1.0], [True, False], [0.0])

    @given(
        st.lists(
            st.tuples(st.floats(min_value=-100, max_value=100),
                      st.booleans()),
            min_size=1, max_size=60),
        st.lists(st.floats(min_value=-120, max_value=120),
                 min_size=1, max_size=12),
    )
    def test_scalar_and_fast_never_drift(self, samples, thresholds):
        """roc_curve delegates to the fast path; this property pins the
        retained scalar fallback to it so the two cannot diverge."""
        conf = [c for c, _ in samples]
        labels = [lab for _, lab in samples]
        slow = _roc_curve_scalar(conf, labels, thresholds)
        fast = roc_curve_fast(conf, labels, thresholds)
        assert len(slow) == len(fast)
        for a, b in zip(slow, fast):
            assert a.threshold == pytest.approx(b.threshold)
            assert a.false_positive_rate == pytest.approx(b.false_positive_rate)
            assert a.true_positive_rate == pytest.approx(b.true_positive_rate)


class TestAuc:
    def test_perfect_predictor(self):
        points = [RocPoint(0.0, 0.0, 1.0)]
        assert auc(points) == pytest.approx(1.0)

    def test_random_predictor_diagonal(self):
        points = [RocPoint(t, t / 10.0, t / 10.0) for t in range(11)]
        assert auc(points) == pytest.approx(0.5)

    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1),
                  st.floats(min_value=0, max_value=1)),
        min_size=1, max_size=10))
    def test_bounded(self, coords):
        points = [RocPoint(i, fpr, tpr) for i, (fpr, tpr) in enumerate(coords)]
        assert 0.0 <= auc(points) <= 1.0 + 1e-9
