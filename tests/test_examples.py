"""Smoke tests: every example script must run end to end.

Examples are part of the public surface; they run here at ``tiny``
scale so the whole suite stays fast.  Output correctness is covered by
the underlying unit tests — these assert the scripts execute and
produce their headline lines.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    monkeypatch.setattr(sys, "argv", ["example"])


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_complete():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "MPPPB speedup over LRU" in out
    assert "MPKI" in out


def test_policy_comparison(capsys):
    out = run_example("policy_comparison.py", capsys)
    assert "speedup over LRU" in out
    assert "geomean" in out


def test_roc_curves(capsys):
    out = run_example("roc_curves.py", capsys)
    assert "multiperspective" in out
    assert "AUC" in out


def test_feature_search(capsys):
    out = run_example("feature_search.py", capsys)
    assert "Best feature set found" in out
    assert "LRU mpki" in out


def test_multi_programmed(capsys):
    out = run_example("multi_programmed.py", capsys)
    assert "weighted speedup over LRU" in out


def test_custom_features(capsys):
    out = run_example("custom_features.py", capsys)
    assert "Hardware budget" in out
    assert "mcf MPKI" in out
