"""Tests for the on-disk result store and cache-key hashing."""

import json
import os

import pytest

from repro.config import TINY
from repro.core.mpppb import MPPPBConfig
from repro.core.presets import table_1a_features
from repro.cpu.timing import TimingConfig
from repro.exec import (
    SCHEMA_VERSION,
    ResultStore,
    SingleCell,
    TraceSpec,
    canonical_json,
    stable_hash,
    task_seed,
)
from repro.sim.multi import MixResult
from repro.sim.single import BenchmarkResult, SegmentResult


def _benchmark_result() -> BenchmarkResult:
    segments = tuple(
        SegmentResult(
            segment_name=f"b.s{i}", weight=0.5 + i, ipc=1.25 + i * 0.125,
            mpki=3.7, llc_accesses=1000 + i, llc_hits=700, llc_misses=300,
            llc_bypasses=17, demand_misses=290, instructions=40_000,
        )
        for i in range(3)
    )
    return BenchmarkResult(benchmark="b", segments=segments)


def _mix_result() -> MixResult:
    return MixResult(
        mix_name="mix0001",
        thread_names=("a.s0", "b.s0", "c.s1", "d.s0"),
        ipcs=(1.1, 0.9, 1.300000000000001, 0.75),
        single_ipcs=(1.2, 1.0, 1.5, 0.8),
        mpki=4.25,
        llc_misses=1234,
        llc_bypasses=56,
    )


class TestResultSerde:
    def test_benchmark_result_round_trip_through_json(self):
        result = _benchmark_result()
        payload = json.loads(json.dumps(result.to_dict()))
        assert BenchmarkResult.from_dict(payload) == result

    def test_mix_result_round_trip_through_json(self):
        result = _mix_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = MixResult.from_dict(payload)
        assert restored == result
        assert restored.weighted_speedup == result.weighted_speedup


class TestStableHash:
    def test_key_order_independent(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash({"b": [2, 3], "a": 1})

    def test_canonical_json_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_task_seed_is_32_bit(self):
        seed = task_seed(stable_hash({"x": 1}))
        assert 0 <= seed < 2**32

    def _cell(self, **overrides):
        defaults = dict(
            trace=TraceSpec("soplex", TINY.hierarchy.llc_bytes, 4_000),
            policy="mpppb",
            hierarchy=TINY.hierarchy,
            mpppb_config=MPPPBConfig(features=table_1a_features()),
            warmup_fraction=0.25,
        )
        defaults.update(overrides)
        return SingleCell(**defaults)

    def test_key_stable_for_equal_cells(self):
        assert stable_hash(self._cell().key_payload()) == \
            stable_hash(self._cell().key_payload())

    def test_key_changes_with_hierarchy(self):
        other = self._cell(hierarchy=TINY.multi_hierarchy)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_timing(self):
        other = self._cell(timing=TimingConfig(dram_latency=321))
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_policy_config(self):
        config = MPPPBConfig(features=table_1a_features(), taus=(71, 30, 0))
        other = self._cell(mpppb_config=config)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_trace_spec(self):
        other = self._cell(
            trace=TraceSpec("soplex", TINY.hierarchy.llc_bytes, 4_001))
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_warmup(self):
        other = self._cell(warmup_fraction=0.3)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())


class TestResultStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = stable_hash({"cell": 1})
        assert store.get(key) is None
        store.put(key, {"kind": "single", "result": {"x": 1.5}})
        payload = store.get(key)
        assert payload["result"] == {"x": 1.5}
        assert payload["kind"] == "single"
        assert payload["schema"] == SCHEMA_VERSION
        assert (store.stats.hits, store.stats.misses, store.stats.stores) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        root = tmp_path / "cache"
        ResultStore(root).put("ab" * 32, {"kind": "mix", "result": [1, 2]})
        fresh = ResultStore(root)
        assert fresh.get("ab" * 32)["result"] == [1, 2]
        assert fresh.stats.hits == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"kind": "single", "result": 1})
        path = store._path(key)
        blob = json.loads(path.read_text())
        blob["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, {"kind": "single", "result": 1})
        store._path(key).write_text("{not json")
        assert store.get(key) is None

    def test_eviction_drops_oldest(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        keys = [f"{i:02d}" + "a" * 62 for i in range(3)]
        for age, key in enumerate(keys):
            store.put(key, {"kind": "single", "result": age})
            # Force distinct, ordered mtimes so LRU order is deterministic.
            os.utime(store._path(key), (1_000_000 + age, 1_000_000 + age))
        store.put("ff" + "a" * 62, {"kind": "single", "result": 99})
        assert store.get(keys[0]) is None          # oldest evicted
        assert store.get(keys[2])["result"] == 2   # newer survives
        assert store.stats.evictions >= 1
        assert len(store) <= 2 + 1  # cap plus the blob that triggered eviction

    def test_rejects_nonpositive_max_entries(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)


def _hammer(root: str, worker: int, count: int, max_entries: int) -> list:
    """Write ``count`` blobs into a shared store; returns the keys used.

    Runs in a child process: two of these interleaving put/_evict/
    _rewrite_index against one directory is the concurrent-writer
    scenario the advisory lock serializes.
    """
    store = ResultStore(root, max_entries=max_entries)
    keys = []
    for i in range(count):
        key = stable_hash({"worker": worker, "i": i})
        store.put(key, {"kind": "single", "result": [worker, i]})
        keys.append(key)
    return keys


class TestConcurrentWriters:
    def _run_pair(self, tmp_path, count, max_entries):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_hammer, str(tmp_path), worker, count,
                                   max_entries)
                       for worker in (1, 2)]
            return [f.result() for f in futures]

    def test_interleaved_eviction_keeps_store_consistent(self, tmp_path):
        import re

        self._run_pair(tmp_path, count=60, max_entries=20)
        store = ResultStore(tmp_path, max_entries=20)
        # Every surviving blob parses and carries the schema stamp.
        for blob in store._blobs():
            payload = json.loads(blob.read_text())
            assert payload["schema"] == SCHEMA_VERSION
        # The compacted index holds only well-formed relative paths.
        pattern = re.compile(r"^[0-9a-f]{2}/[0-9a-f]{64}\.(json|bin)$")
        for line in (tmp_path / "index.log").read_text().splitlines():
            assert pattern.match(line), line
        # And the store still works.
        store.put("ab" * 32, {"kind": "single", "result": 1})
        assert store.get("ab" * 32)["result"] == 1

    def test_no_eviction_loses_no_acknowledged_write(self, tmp_path):
        key_sets = self._run_pair(tmp_path, count=25, max_entries=100_000)
        store = ResultStore(tmp_path)
        for worker, keys in zip((1, 2), key_sets):
            for i, key in enumerate(keys):
                payload = store.get(key)
                assert payload is not None, key
                assert payload["result"] == [worker, i]
