"""Tests for the on-disk result store and cache-key hashing."""

import json
import os

import pytest

from repro.config import TINY
from repro.core.mpppb import MPPPBConfig
from repro.core.presets import table_1a_features
from repro.cpu.timing import TimingConfig
from repro.exec import (
    SCHEMA_VERSION,
    ResultStore,
    SingleCell,
    TraceSpec,
    canonical_json,
    stable_hash,
    task_seed,
)
from repro.sim.multi import MixResult
from repro.sim.single import BenchmarkResult, SegmentResult


def _benchmark_result() -> BenchmarkResult:
    segments = tuple(
        SegmentResult(
            segment_name=f"b.s{i}", weight=0.5 + i, ipc=1.25 + i * 0.125,
            mpki=3.7, llc_accesses=1000 + i, llc_hits=700, llc_misses=300,
            llc_bypasses=17, demand_misses=290, instructions=40_000,
        )
        for i in range(3)
    )
    return BenchmarkResult(benchmark="b", segments=segments)


def _mix_result() -> MixResult:
    return MixResult(
        mix_name="mix0001",
        thread_names=("a.s0", "b.s0", "c.s1", "d.s0"),
        ipcs=(1.1, 0.9, 1.300000000000001, 0.75),
        single_ipcs=(1.2, 1.0, 1.5, 0.8),
        mpki=4.25,
        llc_misses=1234,
        llc_bypasses=56,
    )


class TestResultSerde:
    def test_benchmark_result_round_trip_through_json(self):
        result = _benchmark_result()
        payload = json.loads(json.dumps(result.to_dict()))
        assert BenchmarkResult.from_dict(payload) == result

    def test_mix_result_round_trip_through_json(self):
        result = _mix_result()
        payload = json.loads(json.dumps(result.to_dict()))
        restored = MixResult.from_dict(payload)
        assert restored == result
        assert restored.weighted_speedup == result.weighted_speedup


class TestStableHash:
    def test_key_order_independent(self):
        assert stable_hash({"a": 1, "b": [2, 3]}) == stable_hash({"b": [2, 3], "a": 1})

    def test_canonical_json_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_task_seed_is_32_bit(self):
        seed = task_seed(stable_hash({"x": 1}))
        assert 0 <= seed < 2**32

    def _cell(self, **overrides):
        defaults = dict(
            trace=TraceSpec("soplex", TINY.hierarchy.llc_bytes, 4_000),
            policy="mpppb",
            hierarchy=TINY.hierarchy,
            mpppb_config=MPPPBConfig(features=table_1a_features()),
            warmup_fraction=0.25,
        )
        defaults.update(overrides)
        return SingleCell(**defaults)

    def test_key_stable_for_equal_cells(self):
        assert stable_hash(self._cell().key_payload()) == \
            stable_hash(self._cell().key_payload())

    def test_key_changes_with_hierarchy(self):
        other = self._cell(hierarchy=TINY.multi_hierarchy)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_timing(self):
        other = self._cell(timing=TimingConfig(dram_latency=321))
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_policy_config(self):
        config = MPPPBConfig(features=table_1a_features(), taus=(71, 30, 0))
        other = self._cell(mpppb_config=config)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_trace_spec(self):
        other = self._cell(
            trace=TraceSpec("soplex", TINY.hierarchy.llc_bytes, 4_001))
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())

    def test_key_changes_with_warmup(self):
        other = self._cell(warmup_fraction=0.3)
        assert stable_hash(self._cell().key_payload()) != \
            stable_hash(other.key_payload())


class TestResultStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = stable_hash({"cell": 1})
        assert store.get(key) is None
        store.put(key, {"kind": "single", "result": {"x": 1.5}})
        payload = store.get(key)
        assert payload["result"] == {"x": 1.5}
        assert payload["kind"] == "single"
        assert payload["schema"] == SCHEMA_VERSION
        assert (store.stats.hits, store.stats.misses, store.stats.stores) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        root = tmp_path / "cache"
        ResultStore(root).put("ab" * 32, {"kind": "mix", "result": [1, 2]})
        fresh = ResultStore(root)
        assert fresh.get("ab" * 32)["result"] == [1, 2]
        assert fresh.stats.hits == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" * 32
        store.put(key, {"kind": "single", "result": 1})
        path = store._path(key)
        blob = json.loads(path.read_text())
        blob["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(blob))
        assert store.get(key) is None

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, {"kind": "single", "result": 1})
        store._path(key).write_text("{not json")
        assert store.get(key) is None

    def test_eviction_drops_oldest(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        keys = [f"{i:02d}" + "a" * 62 for i in range(3)]
        for age, key in enumerate(keys):
            store.put(key, {"kind": "single", "result": age})
            # Force distinct, ordered mtimes so LRU order is deterministic.
            os.utime(store._path(key), (1_000_000 + age, 1_000_000 + age))
        store.put("ff" + "a" * 62, {"kind": "single", "result": 99})
        assert store.get(keys[0]) is None          # oldest evicted
        assert store.get(keys[2])["result"] == 2   # newer survives
        assert store.stats.evictions >= 1
        assert len(store) <= 2 + 1  # cap plus the blob that triggered eviction

    def test_rejects_nonpositive_max_entries(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)


def _hammer(root: str, worker: int, count: int, max_entries: int) -> list:
    """Write ``count`` blobs into a shared store; returns the keys used.

    Runs in a child process: two of these interleaving put/_evict/
    _rewrite_index against one directory is the concurrent-writer
    scenario the advisory lock serializes.
    """
    store = ResultStore(root, max_entries=max_entries)
    keys = []
    for i in range(count):
        key = stable_hash({"worker": worker, "i": i})
        store.put(key, {"kind": "single", "result": [worker, i]})
        keys.append(key)
    return keys


class TestTieredStore:
    def _tiered(self, tmp_path, **kwargs):
        from repro.exec.store import TieredResultStore

        return TieredResultStore(tmp_path / "local", tmp_path / "shared",
                                 **kwargs)

    def test_write_back_lands_in_both_tiers(self, tmp_path):
        store = self._tiered(tmp_path)
        store.put("ab" * 32, {"kind": "single", "result": 1})
        assert ResultStore(tmp_path / "local").get("ab" * 32)["result"] == 1
        assert ResultStore(tmp_path / "shared").get("ab" * 32)["result"] == 1
        assert store.tier_counts()["shared_fills"] == 1

    def test_read_through_fills_local_and_counts_hit(self, tmp_path):
        key = "cd" * 32
        ResultStore(tmp_path / "shared").put(key, {"kind": "single",
                                                   "result": 7})
        store = self._tiered(tmp_path)
        payload = store.get(key)
        assert payload["result"] == 7
        assert store.last_tier == "shared"
        assert (store.stats.hits, store.stats.misses) == (1, 0)
        assert store.tier_counts()["shared_hits"] == 1
        # The blob was promoted: a second lookup is a local hit.
        assert store.get(key)["result"] == 7
        assert store.last_tier == "local"
        assert store.tier_counts()["local_hits"] == 1

    def test_bytes_read_through(self, tmp_path):
        key = "ef" * 32
        ResultStore(tmp_path / "shared").put_bytes(key, b"artifact")
        store = self._tiered(tmp_path)
        assert store.get_bytes(key) == b"artifact"
        assert store.last_tier == "shared"
        assert store.get_bytes(key) == b"artifact"
        assert store.last_tier == "local"
        assert store.tier_counts() == {"local_hits": 1, "shared_hits": 1,
                                       "shared_fills": 0, "breaker_trips": 0,
                                       "breaker_skips": 0, "breaker_open": 0}

    def test_both_tiers_missing_is_a_miss(self, tmp_path):
        store = self._tiered(tmp_path)
        assert store.get("01" * 32) is None
        assert store.stats.misses == 1
        assert store.tier_counts()["shared_hits"] == 0

    def test_half_written_shared_blob_is_a_miss(self, tmp_path):
        key = "23" * 32
        store = self._tiered(tmp_path)
        shared_path = store.shared._path(key)
        shared_path.parent.mkdir(parents=True, exist_ok=True)
        shared_path.write_text('{"kind": "single", "resu')  # torn write
        assert store.get(key) is None
        assert store.stats.misses == 1
        assert store.tier_counts()["shared_hits"] == 0

    def test_stat_bytes_reports_the_holding_tier(self, tmp_path):
        store = self._tiered(tmp_path)
        ResultStore(tmp_path / "shared").put_bytes("45" * 32, b"xyzab")
        assert store.stat_bytes_tier("45" * 32) == (5, "shared")
        store.put_bytes("67" * 32, b"xy")
        assert store.stat_bytes_tier("67" * 32) == (2, "local")
        assert store.stat_bytes_tier("89" * 32) is None
        assert store.stat_bytes("45" * 32) == 5

    def test_resolve_shared_honors_env_and_sentinels(self, monkeypatch):
        from repro.exec.store import resolve_shared

        monkeypatch.delenv("REPRO_SHARED_STORE", raising=False)
        assert resolve_shared() is None
        assert resolve_shared("/mnt/shared") == "/mnt/shared"
        assert resolve_shared("off") is None
        monkeypatch.setenv("REPRO_SHARED_STORE", "/mnt/env")
        assert resolve_shared() == "/mnt/env"
        monkeypatch.setenv("REPRO_SHARED_STORE", "none")
        assert resolve_shared() is None

    def test_make_store_picks_the_tiering(self, tmp_path):
        from repro.exec.store import TieredResultStore, make_store

        plain = make_store(tmp_path / "a")
        assert not isinstance(plain, TieredResultStore)
        tiered = make_store(tmp_path / "a", str(tmp_path / "b"))
        assert isinstance(tiered, TieredResultStore)


class TestGcVsConcurrentFill:
    def test_compaction_keeps_blobs_that_landed_mid_gc(self, tmp_path):
        # Deterministic replay of the race: a read-through fill lands
        # between gc's ranking snapshot and its index compaction.  The
        # rewritten index must keep the newcomer's recency entry, or
        # the next eviction pass treats it as the oldest blob.
        store = ResultStore(tmp_path)
        keys = [f"{i:02d}" + "a" * 62 for i in range(3)]
        for key in keys:
            store.put(key, {"kind": "single", "result": 0})
        ranked = store._ranked_blobs()
        late_key = "ff" + "b" * 62
        store.put(late_key, {"kind": "single", "result": 9})  # the racer
        store._drop(ranked[:2], ranked[2:])
        index = (tmp_path / "index.log").read_text().splitlines()
        assert f"{late_key[:2]}/{late_key}.json" in index
        assert store._count == 2
        assert store.get(late_key)["result"] == 9


def _gc_hammer(root: str, rounds: int) -> int:
    """Child process: repeatedly gc the local tier while fills land."""
    store = ResultStore(root)
    removed = 0
    for _ in range(rounds):
        removed += store.gc(max_entries=4)
    return removed


def _fill_hammer(local_root: str, shared_root: str, rounds: int,
                 keys: list) -> int:
    """Child process: read-through fills from the shared tier."""
    from repro.exec.store import TieredResultStore

    store = TieredResultStore(local_root, shared_root)
    hits = 0
    for i in range(rounds):
        if store.get(keys[i % len(keys)]) is not None:
            hits += 1
    return hits


class TestGcVsFillTwoProcesses:
    def test_gc_and_read_through_fills_stay_consistent(self, tmp_path):
        import re
        from concurrent.futures import ProcessPoolExecutor

        local = tmp_path / "local"
        shared = tmp_path / "shared"
        seed = ResultStore(shared)
        keys = [stable_hash({"blob": i}) for i in range(12)]
        for i, key in enumerate(keys):
            seed.put(key, {"kind": "single", "result": i})

        with ProcessPoolExecutor(max_workers=2) as pool:
            fills = pool.submit(_fill_hammer, str(local), str(shared),
                                120, keys)
            gcs = pool.submit(_gc_hammer, str(local), 120)
            # Every lookup hit: the shared tier is never gc'd, so a
            # concurrently evicted local blob reads straight through.
            assert fills.result() == 120
            assert gcs.result() >= 1

        # The surviving local tier is structurally sound...
        survivor = ResultStore(local)
        for blob in survivor._blobs():
            payload = json.loads(blob.read_text())
            assert payload["schema"] == SCHEMA_VERSION
        pattern = re.compile(r"^[0-9a-f]{2}/[0-9a-f]{64}\.(json|bin)$")
        for line in (local / "index.log").read_text().splitlines():
            assert pattern.match(line), line
        # ...and every key still resolves with its original payload.
        from repro.exec.store import TieredResultStore

        final = TieredResultStore(local, shared)
        for i, key in enumerate(keys):
            assert final.get(key)["result"] == i


class TestConcurrentWriters:
    def _run_pair(self, tmp_path, count, max_entries):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_hammer, str(tmp_path), worker, count,
                                   max_entries)
                       for worker in (1, 2)]
            return [f.result() for f in futures]

    def test_interleaved_eviction_keeps_store_consistent(self, tmp_path):
        import re

        self._run_pair(tmp_path, count=60, max_entries=20)
        store = ResultStore(tmp_path, max_entries=20)
        # Every surviving blob parses and carries the schema stamp.
        for blob in store._blobs():
            payload = json.loads(blob.read_text())
            assert payload["schema"] == SCHEMA_VERSION
        # The compacted index holds only well-formed relative paths.
        pattern = re.compile(r"^[0-9a-f]{2}/[0-9a-f]{64}\.(json|bin)$")
        for line in (tmp_path / "index.log").read_text().splitlines():
            assert pattern.match(line), line
        # And the store still works.
        store.put("ab" * 32, {"kind": "single", "result": 1})
        assert store.get("ab" * 32)["result"] == 1

    def test_no_eviction_loses_no_acknowledged_write(self, tmp_path):
        key_sets = self._run_pair(tmp_path, count=25, max_entries=100_000)
        store = ResultStore(tmp_path)
        for worker, keys in zip((1, 2), key_sets):
            for i, key in enumerate(keys):
                payload = store.get(key)
                assert payload is not None, key
                assert payload["result"] == [worker, i]
