"""Integration tests across the three-stage simulation pipeline.

These tests pin down the architectural invariants DESIGN.md relies on:
the stage-1 LLC stream is policy invariant, replays are deterministic,
statistics are internally consistent, and the equivalence between the
dictionary-based L1/L2 LRU and the explicit-policy LLC LRU holds.
"""

import pytest

from repro.cache.cache import FastLRUCache
from repro.cache.replacement.lru import LRUPolicy
from repro.policies import make_policy, policy_factory
from repro.sim.hierarchy import HierarchyConfig, UpperLevels
from repro.sim.llc import LLCAccess, LLCSimulator
from repro.traces.workloads import build_segments

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=64, llc_ways=16)
LLC = SMALL.llc_bytes
POLICIES = ["lru", "srrip", "mdpp", "min", "sdbp", "perceptron",
            "hawkeye", "ship", "mpppb-1a"]


@pytest.fixture(scope="module")
def segment():
    return build_segments("soplex", LLC, accesses=6000)[0]


@pytest.fixture(scope="module")
def upper(segment):
    return UpperLevels(SMALL).run(segment.trace)


class TestStageInvariants:
    def test_llc_stream_policy_invariant(self, segment):
        """Stage 1 never consults the LLC, so its output is unique."""
        a = UpperLevels(SMALL).run(segment.trace)
        b = UpperLevels(SMALL).run(segment.trace)
        assert [x.block for x in a.llc_stream] == [x.block for x in b.llc_stream]
        assert a.service == b.service

    def test_service_levels_consistent_with_stream(self, upper, segment):
        llc_indices = [s for s in upper.service if s >= 0]
        demand = [a for a in upper.llc_stream if not a.is_prefetch]
        assert len(llc_indices) == len(demand)
        assert llc_indices == sorted(llc_indices)

    def test_mem_indices_monotone_in_stream(self, upper):
        mem_indices = [a.mem_index for a in upper.llc_stream]
        assert mem_indices == sorted(mem_indices)

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_llc_stats_consistent(self, upper, segment, policy_name):
        """hits + misses == accesses; bypasses + fills == misses."""
        sim = LLCSimulator(LLC, SMALL.llc_ways,
                           make_policy(policy_name, LLC // (64 * 16), 16))
        result = sim.run(upper.llc_stream, pc_trace=segment.trace.pcs)
        stats = result.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.hits == sum(result.outcomes)
        assert stats.demand_hits + stats.demand_misses == stats.demand_accesses
        assert stats.bypasses <= stats.misses
        assert len(result.outcomes) == len(upper.llc_stream)

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_replay_deterministic(self, upper, segment, policy_name):
        def run():
            sim = LLCSimulator(LLC, SMALL.llc_ways,
                               make_policy(policy_name, LLC // (64 * 16), 16))
            return sim.run(upper.llc_stream, pc_trace=segment.trace.pcs)

        assert run().outcomes == run().outcomes

    def test_min_lower_bounds_all_policies(self, upper, segment):
        misses = {}
        for policy_name in POLICIES:
            sim = LLCSimulator(LLC, SMALL.llc_ways,
                               make_policy(policy_name, LLC // (64 * 16), 16))
            misses[policy_name] = sim.run(
                upper.llc_stream, pc_trace=segment.trace.pcs
            ).stats.misses
        assert all(misses["min"] <= m for m in misses.values())


class TestLRUEquivalence:
    def test_fast_lru_matches_policy_lru(self):
        """The dict-trick L1/L2 cache and the explicit LLC LRU policy
        implement the same replacement function."""
        import random

        rng = random.Random(31)
        blocks = [rng.randrange(256) for _ in range(3000)]
        fast = FastLRUCache(16 * 64 * 4, ways=4)
        sim = LLCSimulator(16 * 64 * 4, 4, LRUPolicy(16, 4))
        stream = [
            LLCAccess(pc=0x400, block=b, offset=0, is_write=False,
                      is_prefetch=False, mem_index=i, instr_index=i)
            for i, b in enumerate(blocks)
        ]
        outcomes = sim.run(stream).outcomes
        for block, expected in zip(blocks, outcomes):
            assert fast.access(block) is expected


class TestWarmupSemantics:
    def test_warm_plus_measured_covers_all(self, upper, segment):
        sim = LLCSimulator(LLC, SMALL.llc_ways, LRUPolicy(LLC // (64 * 16), 16))
        boundary = len(upper.llc_stream) // 2
        result = sim.run(upper.llc_stream, pc_trace=segment.trace.pcs,
                         warmup=boundary)
        total = result.stats.accesses + result.warm_stats.accesses
        assert total == len(upper.llc_stream)
        assert result.warm_stats.accesses == boundary

    def test_warmup_does_not_change_outcomes(self, upper, segment):
        def outcomes(warmup):
            sim = LLCSimulator(LLC, SMALL.llc_ways,
                               LRUPolicy(LLC // (64 * 16), 16))
            return sim.run(upper.llc_stream, pc_trace=segment.trace.pcs,
                           warmup=warmup).outcomes

        assert outcomes(0) == outcomes(100)


class TestRunnerEndToEnd:
    def test_full_pipeline_ipc_sane(self, segment):
        from repro.sim.single import SingleThreadRunner

        runner = SingleThreadRunner(SMALL, warmup_fraction=0.25)
        for policy_name in ("lru", "mpppb-1a", "min"):
            result = runner.run_segment(segment, policy_factory(policy_name))
            # IPC bounded by issue width and by total memory stall.
            assert 0.0 < result.ipc <= 4.0
