"""Fault-tolerance tests for the execution layer.

Exercises the deterministic fault-injection harness
(``REPRO_FAULT_INJECT``) end to end: per-cell failure isolation,
bounded retries, worker-crash (``BrokenProcessPool``) recovery,
per-cell watchdog timeouts, batch degradation, and the
"corruption is a cache miss" contract.  The load-bearing invariant in
every recovery test: results after injected faults are identical to a
clean run's.
"""

import pytest

from repro.config import TINY
from repro.exec import (
    CellExecutionError,
    ParallelRunner,
    ResultStore,
    SearchCell,
    SingleCell,
    SuiteSpec,
    TraceSpec,
    stable_hash,
)
from repro.exec.faults import (
    ConfigError,
    FaultRule,
    corrupt_result_blob,
    parse_fault_spec,
)
from repro.exec.runner import SearchBatchCell

ACCESSES = 2_000
BENCHMARKS = ("gamess", "soplex")
POLICIES = ("lru", "mpppb-1a")


def _cells():
    return [
        SingleCell(
            trace=TraceSpec(name, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in POLICIES
        for name in BENCHMARKS
    ]


def _keys(cells):
    return [stable_hash(cell.key_payload()) for cell in cells]


@pytest.fixture()
def no_backoff(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")


@pytest.fixture(scope="module")
def clean_results():
    return ParallelRunner(jobs=1, store=None, verbose=False).run(_cells())


class TestFaultSpecParsing:
    def test_parses_kinds_and_options(self):
        rules = parse_fault_spec("raise:every=5,phase=2;hang:key=ab,seconds=9")
        assert rules == (
            FaultRule(kind="raise", every=5, phase=2),
            FaultRule(kind="hang", key="ab", seconds=9.0),
        )

    def test_times_bounds_attempts(self):
        [rule] = parse_fault_spec("raise:key=ab,times=2")
        assert rule.selects("abcd", 1)
        assert rule.selects("abcd", 2)
        assert not rule.selects("abcd", 3)
        assert not rule.selects("cdef", 1)

    @pytest.mark.parametrize("spec", [
        "explode",
        "raise:every",
        "raise:every=two",
        "raise:volume=11",
        "raise:every=0",
    ])
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_fault_spec(spec)


class TestRetries:
    def test_retry_recovers_and_reproduces(self, monkeypatch, no_backoff,
                                           clean_results):
        # every=1 selects every cell on attempt 1 only (times=1), so a
        # single retry budget makes the whole batch succeed.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=1")
        engine = ParallelRunner(jobs=1, store=None, verbose=False, retries=1)
        assert engine.run(_cells()) == clean_results
        report = engine.last_report
        assert report.retries == len(clean_results)
        assert report.failures == ()
        assert all(outcome.attempts == 2 for outcome in report.outcomes)

    def test_collect_mode_isolates_failures(self, monkeypatch, no_backoff,
                                            clean_results):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=1,times=99")
        engine = ParallelRunner(jobs=1, store=None, verbose=False, retries=1)
        results = engine.run(_cells())
        assert results == [None] * len(clean_results)
        report = engine.last_report
        assert report.failed == len(results)
        assert len(report.failures) == len(results)
        assert all(f.kind == "error" and f.attempts == 2
                   for f in report.failures)
        assert all(outcome.failed for outcome in report.outcomes)
        assert "failed" in report.failures_table()

    def test_raise_mode_raises_typed_error(self, monkeypatch, no_backoff):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=1,times=99")
        engine = ParallelRunner(jobs=1, store=None, verbose=False,
                                on_error="raise")
        with pytest.raises(CellExecutionError) as excinfo:
            engine.run(_cells())
        assert excinfo.value.failure is not None
        assert excinfo.value.failure.exc_type == "InjectedFault"


class TestCrashRecovery:
    def test_worker_crash_rebuilds_pool(self, monkeypatch, no_backoff,
                                        clean_results):
        cells = _cells()
        victim = _keys(cells)[0][:16]
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"crash:key={victim}")
        engine = ParallelRunner(jobs=2, store=None, verbose=False)
        assert engine.run(cells) == clean_results
        report = engine.last_report
        assert report.pool_rebuilds >= 1
        assert report.requeued >= 1
        assert report.failures == ()

    def test_crash_loses_no_completed_results(self, monkeypatch, no_backoff,
                                              tmp_path, clean_results):
        cells = _cells()
        victim = _keys(cells)[-1][:16]
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"crash:key={victim}")
        store = ResultStore(tmp_path / "cache")
        faulted = ParallelRunner(jobs=2, store=store, verbose=False)
        assert faulted.run(cells) == clean_results
        assert faulted.last_report.pool_rebuilds >= 1

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        warm = ParallelRunner(jobs=1, store=ResultStore(tmp_path / "cache"),
                              verbose=False)
        assert warm.run(cells) == clean_results
        # Every cell that completed before/after the pool death is a
        # store hit now: a crash loses zero completed results.
        assert warm.last_report.hits == len(cells)

    def test_serial_crash_degrades_to_raise(self, monkeypatch, no_backoff,
                                            clean_results):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "crash:every=1")
        # Serial degradation is a local-pool path: pin the backend so a
        # REPRO_BACKEND=fleet environment (CI dist-smoke) can't reroute
        # the crash into a worker process.
        engine = ParallelRunner(jobs=1, store=None, verbose=False, retries=1,
                                backend="local")
        assert engine.run(_cells()) == clean_results
        assert engine.last_report.retries == len(clean_results)


class TestWatchdogTimeout:
    def test_straggler_is_timed_out_and_retried(self, monkeypatch, no_backoff,
                                                clean_results):
        cells = _cells()
        victim = _keys(cells)[0][:16]
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"hang:key={victim},seconds=30")
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                retries=1, cell_timeout=1.0)
        assert engine.run(cells) == clean_results
        report = engine.last_report
        assert report.timeouts >= 1
        assert report.retries >= 1
        assert report.pool_rebuilds >= 1
        assert report.failures == ()

    def test_exhausted_timeout_is_recorded(self, monkeypatch, no_backoff):
        cells = _cells()[:2]
        victim = _keys(cells)[0][:16]
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"hang:key={victim},seconds=30,times=99")
        # Pin the local pool: fleet worker loss requeues the innocent
        # in-flight cell differently, and this test asserts the exact
        # local watchdog bookkeeping.
        engine = ParallelRunner(jobs=2, store=None, verbose=False,
                                cell_timeout=0.5, backend="local")
        results = engine.run(cells)
        report = engine.last_report
        assert results[0] is None and results[1] is not None
        [failure] = report.failures
        assert failure.kind == "timeout"
        assert failure.exc_type == "TimeoutError"


class TestCorruption:
    def test_corrupt_result_blob_is_a_miss(self, tmp_path, clean_results):
        cells = _cells()
        keys = _keys(cells)
        store = ResultStore(tmp_path / "cache")
        cold = ParallelRunner(jobs=1, store=store, verbose=False)
        assert cold.run(cells) == clean_results

        corrupt_result_blob(store, keys[0], cells[0].kind)
        warm = ParallelRunner(jobs=1, store=ResultStore(tmp_path / "cache"),
                              verbose=False)
        assert warm.run(cells) == clean_results
        assert warm.last_report.hits == len(cells) - 1
        assert warm.last_report.misses == 1

    def test_corrupt_fault_forces_recompute(self, monkeypatch, tmp_path,
                                            clean_results):
        cells = _cells()
        victim = _keys(cells)[1][:16]
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"corrupt:key={victim}")
        store = ResultStore(tmp_path / "cache")
        # The faulted run still *returns* correct results; only the
        # stored blob is poisoned after the fact.
        assert ParallelRunner(jobs=1, store=store,
                              verbose=False).run(cells) == clean_results

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        warm = ParallelRunner(jobs=1, store=ResultStore(tmp_path / "cache"),
                              verbose=False)
        assert warm.run(cells) == clean_results
        assert warm.last_report.misses == 1


class TestBatchDegradation:
    SPEC = SuiteSpec(TINY.hierarchy.llc_bytes, 2_000, names=("gamess",))

    def _search_cells(self, k=3):
        from repro.core.presets import single_thread_config, table_1b_features

        import random as _random

        from repro.core.features import random_feature_set

        rng = _random.Random(7)
        feature_sets = [single_thread_config("a").features,
                        table_1b_features()]
        while len(feature_sets) < k:
            feature_sets.append(random_feature_set(rng))
        return [
            SearchCell(
                suite=self.SPEC,
                features=tuple(features),
                hierarchy=TINY.hierarchy,
                warmup_fraction=TINY.warmup_fraction,
            )
            for features in feature_sets
        ]

    def test_failed_batch_splits_into_singles(self, monkeypatch, no_backoff):
        cells = self._search_cells()
        plain = ParallelRunner(jobs=1, store=None,
                               verbose=False).run_search_batches(cells)

        batch_cell = SearchBatchCell(
            suite=self.SPEC,
            feature_sets=tuple(cell.features for cell in cells),
            hierarchy=TINY.hierarchy,
            base_config=None,
            prefetch=True,
            warmup_fraction=TINY.warmup_fraction,
        )
        batch_key = stable_hash(batch_cell.key_payload())
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"raise:key={batch_key[:16]},times=99")
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        assert engine.run_search_batches(cells) == plain
        report = engine.last_report
        # The batch failed, split into singletons, and every singleton
        # succeeded (their keys differ from the batch key).
        assert report.requeued == len(cells)
        assert report.failures == ()
        assert report.batches == 0
