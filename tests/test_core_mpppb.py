"""Tests for the MPPPB policy: bypass, placement, promotion, end-to-end."""

import pytest

from repro.cache.access import AccessContext
from repro.cache.replacement.lru import LRUPolicy
from repro.core.features import BiasFeature
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.presets import (
    TABLE_1A_SPECS,
    multi_programmed_config,
    single_thread_config,
)
from repro.sim.llc import LLCAccess, LLCSimulator


def stream(blocks, pcs=None):
    pcs = pcs or [0x400] * len(blocks)
    return [
        LLCAccess(pc=pcs[i], block=b, offset=0, is_write=False,
                  is_prefetch=False, mem_index=i, instr_index=4 * i)
        for i, b in enumerate(blocks)
    ]


def minimal_config(**overrides):
    defaults = dict(
        features=(BiasFeature(18, False),),
        default_policy="mdpp",
        tau_bypass=20,
        taus=(15, 10, 5),
        placements=(15, 13, 10),
        tau_no_promote=18,
        sampler_sets=4,
        theta=40,
    )
    defaults.update(overrides)
    return MPPPBConfig(**defaults)


class TestMPPPBConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            minimal_config(taus=(5, 10, 15))

    def test_bypass_must_dominate(self):
        with pytest.raises(ValueError):
            minimal_config(tau_bypass=0, taus=(15, 10, 5))

    def test_default_policy_validated(self):
        with pytest.raises(ValueError):
            minimal_config(default_policy="fifo")

    def test_from_specs(self):
        config = MPPPBConfig.from_specs(TABLE_1A_SPECS)
        assert len(config.features) == 16

    def test_with_features(self):
        config = minimal_config()
        other = config.with_features([BiasFeature(6, False)])
        assert other.features[0].associativity == 6
        assert other.tau_bypass == config.tau_bypass

    def test_placements_validated_against_policy(self):
        config = minimal_config(default_policy="srrip", placements=(15, 13, 10))
        with pytest.raises(ValueError):
            MPPPBPolicy(16, 16, config)


class TestMPPPBPolicyMechanics:
    def _policy(self, **overrides):
        return MPPPBPolicy(16, 16, minimal_config(**overrides))

    def _ctx(self, block=0, pc=0x400, **kwargs):
        return AccessContext(pc=pc, address=block << 6, block=block, offset=0,
                             **kwargs)

    def test_bypass_above_tau0(self):
        policy = self._policy()
        policy._confidence = 25
        assert policy.should_bypass(0, self._ctx()) is True
        assert policy.bypasses == 1

    def test_no_bypass_below_tau0(self):
        policy = self._policy()
        policy._confidence = 15
        assert policy.should_bypass(0, self._ctx()) is False

    def test_placement_cascade(self):
        policy = self._policy()
        expectations = [(18, 15), (12, 13), (7, 10), (0, 0), (-50, 0)]
        for confidence, position in expectations:
            policy._confidence = confidence
            policy.on_fill(0, 3, self._ctx())
            assert policy.default.position(0, 3) == position, confidence

    def test_promotion_suppressed_above_tau4(self):
        policy = self._policy()
        policy._confidence = 0
        policy.on_fill(0, 3, self._ctx())       # placed at MRU = 0
        policy.default.place(0, 3, 12)           # pretend it drifted down
        policy._confidence = 19                  # > tau_no_promote = 18
        policy.on_hit(0, 3, self._ctx())
        assert policy.default.position(0, 3) == 12
        assert policy.promotions_suppressed == 1

    def test_promotion_applies_below_tau4(self):
        policy = self._policy()
        policy.default.place(0, 3, 12)
        policy._confidence = 0
        policy.on_hit(0, 3, self._ctx())
        assert policy.default.position(0, 3) <= 1  # MDPP promote target

    def test_srrip_variant_places_rrpv(self):
        config = minimal_config(default_policy="srrip", placements=(3, 3, 2))
        policy = MPPPBPolicy(16, 16, config)
        policy._confidence = 18
        policy.on_fill(0, 5, self._ctx())
        assert policy.default.rrpvs[0][5] == 3
        policy._confidence = -10
        policy.on_fill(0, 6, self._ctx())
        assert policy.default.rrpvs[0][6] == 0

    def test_storage_bits_reported(self):
        policy = self._policy()
        assert policy.storage_bits() > 0


class TestMPPPBEndToEnd:
    def _run(self, blocks, pcs=None, config=None, sets=16, ways=16):
        config = config or minimal_config(sampler_sets=8)
        policy = MPPPBPolicy(sets, ways, config)
        sim = LLCSimulator(sets * ways * 64, ways, policy)
        return sim.run(stream(blocks, pcs)), policy

    def test_published_config_runs(self):
        config = single_thread_config("a", sampler_sets=8)
        blocks = [i % 64 for i in range(500)]
        result, policy = self._run(blocks, config=config)
        assert result.stats.accesses == 500

    def test_multi_programmed_config_runs(self):
        config = multi_programmed_config(sampler_sets=8)
        blocks = [i % 64 for i in range(500)]
        result, policy = self._run(blocks, config=config)
        assert result.stats.accesses == 500

    def test_learns_to_bypass_streaming(self):
        """A pure stream (no reuse) must eventually be bypassed."""
        config = single_thread_config("a", sampler_sets=16, theta=40)
        blocks = list(range(4000))
        pcs = [0x400] * len(blocks)
        result, policy = self._run(blocks, pcs, config=config)
        assert result.stats.bypasses > 100

    def test_does_not_bypass_hot_loop(self):
        """A small loop that always hits must never be bypassed."""
        config = single_thread_config("a", sampler_sets=16)
        blocks = [i % 32 for i in range(3000)]
        result, policy = self._run(blocks, config=config)
        tail_hits = sum(result.outcomes[-500:])
        assert tail_hits == 500

    def test_beats_lru_on_scan_plus_loop(self):
        """The headline behavior: protect the loop, sacrifice the scan."""
        blocks = []
        pcs = []
        scan_cursor = 10_000
        # Loop of 20 blocks/set-group + interleaved one-shot scan.
        for round_ in range(120):
            for k in range(24):
                blocks.append(k * 16)         # 24 blocks over 16 sets... set 0
                pcs.append(0x400 + 4 * (k % 8))
            for _ in range(10):
                blocks.append(scan_cursor * 16)
                pcs.append(0x900)
                scan_cursor += 1
        config = single_thread_config("a", sampler_sets=16)
        mp_result, _ = self._run(blocks, pcs, config=config)
        lru_policy = LRUPolicy(16, 16)
        lru_sim = LLCSimulator(16 * 16 * 64, 16, lru_policy)
        lru_result = lru_sim.run(stream(blocks, pcs))
        assert mp_result.stats.misses < lru_result.stats.misses
