"""Tests for run manifests and CLI ``resume``.

The manifest turns the store's implicit resumability into explicit
state: interrupted/failed runs can be listed, and ``repro.cli resume``
re-drives exactly the unfinished cells (the completed ones are store
hits).
"""

from repro.cli import main
from repro.config import TINY
from repro.exec import (
    ParallelRunner,
    ResultStore,
    RunManifest,
    SingleCell,
    TraceSpec,
    list_runs,
    stable_hash,
)

CELLS = [
    ("a" * 64, "gamess/lru", "single"),
    ("b" * 64, "soplex/lru", "single"),
    ("c" * 64, "mcf/lru", "single"),
]


class TestRunManifest:
    def test_lifecycle(self, tmp_path):
        manifest = RunManifest.create(tmp_path, label="t",
                                      command=["compare"], cells=CELLS)
        assert manifest.pending() == {key for key, _, _ in CELLS}
        assert not manifest.is_complete

        manifest.mark(CELLS[0][0], "done")
        manifest.mark(CELLS[1][0], "failed")
        assert manifest.completed() == {CELLS[0][0]}
        assert manifest.pending() == {CELLS[1][0], CELLS[2][0]}
        assert "1/3 cells done, 1 failed" == manifest.progress()

        # A failed cell that later succeeds becomes done.
        manifest.mark(CELLS[1][0], "done")
        manifest.mark(CELLS[2][0], "done")
        assert manifest.is_complete

    def test_reopen_continues_completion_log(self, tmp_path):
        first = RunManifest.create(tmp_path, label="t",
                                   command=["compare"], cells=CELLS)
        first.mark(CELLS[0][0], "done")
        again = RunManifest.create(tmp_path, label="t",
                                   command=["compare"], cells=CELLS)
        assert again.run_id == first.run_id
        assert again.completed() == {CELLS[0][0]}

    def test_load_and_list(self, tmp_path):
        created = RunManifest.create(tmp_path, label="t",
                                     command=["compare", "--scale", "tiny"],
                                     cells=CELLS)
        loaded = RunManifest.load(tmp_path, created.run_id)
        assert loaded is not None
        assert loaded.command == ["compare", "--scale", "tiny"]
        assert loaded.cells == created.cells
        assert [m.run_id for m in list_runs(tmp_path)] == [created.run_id]

    def test_unreadable_manifest_is_skipped(self, tmp_path):
        RunManifest.create(tmp_path, label="t", command=[], cells=CELLS)
        (tmp_path / "runs" / "zz.json").write_text("not json")
        assert len(list_runs(tmp_path)) == 1

    def test_runner_records_manifest(self, tmp_path):
        cells = [
            SingleCell(
                trace=TraceSpec(name, TINY.hierarchy.llc_bytes, 2_000),
                policy="lru",
                hierarchy=TINY.hierarchy,
                warmup_fraction=TINY.warmup_fraction,
            )
            for name in ("gamess", "soplex")
        ]
        engine = ParallelRunner(jobs=1, store=ResultStore(tmp_path),
                                verbose=False, command=["compare", "-x"])
        engine.run(cells, label="t")
        manifest = engine.last_manifest
        assert manifest is not None
        assert manifest.is_complete
        assert manifest.command == ["compare", "-x"]
        assert set(manifest.cells) == {stable_hash(c.key_payload())
                                       for c in cells}

    def test_single_cell_runs_skip_manifest(self, tmp_path):
        cell = SingleCell(
            trace=TraceSpec("gamess", TINY.hierarchy.llc_bytes, 2_000),
            policy="lru",
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        engine = ParallelRunner(jobs=1, store=ResultStore(tmp_path),
                                verbose=False)
        engine.run([cell])
        assert engine.last_manifest is None
        assert list_runs(tmp_path) == []


class TestTornDoneLog:
    """A crash mid-append must never wedge replay of the ``.done`` log."""

    def _create(self, tmp_path):
        return RunManifest.create(tmp_path, label="t",
                                  command=["compare"], cells=CELLS)

    def test_torn_final_line_is_skipped(self, tmp_path):
        manifest = self._create(tmp_path)
        manifest.mark(CELLS[0][0], "done")
        # Simulate a torn write: the second record lost its tail.
        with open(manifest.done_path, "a", encoding="utf-8") as handle:
            handle.write(f"done {CELLS[1][0][:20]}")
        reopened = self._create(tmp_path)
        assert reopened.completed() == {CELLS[0][0]}
        assert reopened.pending() == {CELLS[1][0], CELLS[2][0]}

    def test_mark_after_torn_tail_starts_a_fresh_line(self, tmp_path):
        manifest = self._create(tmp_path)
        manifest.mark(CELLS[0][0], "done")
        with open(manifest.done_path, "a", encoding="utf-8") as handle:
            handle.write("done ")  # record cut mid-write
        reopened = self._create(tmp_path)
        reopened.mark(CELLS[1][0], "done")
        # The new record must not have fused with the torn fragment.
        final = self._create(tmp_path)
        assert final.completed() == {CELLS[0][0], CELLS[1][0]}
        text = manifest.done_path.read_text(encoding="utf-8")
        assert f"done \ndone {CELLS[1][0]}\n" in text

    def test_garbage_status_lines_are_skipped(self, tmp_path):
        manifest = self._create(tmp_path)
        with open(manifest.done_path, "a", encoding="utf-8") as handle:
            handle.write(f"d\x00ne {CELLS[0][0]}\n")
            handle.write(f"done {CELLS[1][0]}\n")
        reopened = self._create(tmp_path)
        assert reopened.completed() == {CELLS[1][0]}

    def test_fsync_knob_still_appends_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_FSYNC", "1")
        manifest = self._create(tmp_path)
        manifest.mark(CELLS[0][0], "done")
        assert self._create(tmp_path).completed() == {CELLS[0][0]}


class TestExecFlagStripping:
    def test_strips_space_and_equals_forms(self):
        from repro.exec.manifest import strip_exec_flags

        argv = ["compare", "--jobs", "4", "--backend=fleet",
                "--workers", "2", "--shared-store=/mnt/s",
                "--hedge", "2.0", "--scale", "tiny"]
        assert strip_exec_flags(argv) == ["compare", "--scale", "tiny"]

    def test_run_id_ignores_exec_flags(self, tmp_path):
        base = RunManifest.create(
            tmp_path, label="t", command=["compare", "--scale", "tiny"],
            cells=CELLS)
        redone = RunManifest.create(
            tmp_path, label="t",
            command=["compare", "--scale", "tiny", "--jobs", "8",
                     "--backend", "fleet", "--workers=4"],
            cells=CELLS)
        assert redone.run_id == base.run_id

    def test_exec_info_updates_without_losing_progress(self, tmp_path):
        first = RunManifest.create(
            tmp_path, label="t", command=["compare"], cells=CELLS,
            exec_info={"backend": "local", "jobs": "1"})
        first.mark(CELLS[0][0], "done")
        again = RunManifest.create(
            tmp_path, label="t", command=["compare"], cells=CELLS,
            exec_info={"backend": "fleet", "jobs": "2"})
        assert again.run_id == first.run_id
        assert again.completed() == {CELLS[0][0]}  # .done log untouched
        loaded = RunManifest.load(tmp_path, first.run_id)
        assert loaded.exec_info == {"backend": "fleet", "jobs": "2"}

    def test_runner_records_backend_in_manifest(self, tmp_path):
        cells = [
            SingleCell(
                trace=TraceSpec(name, TINY.hierarchy.llc_bytes, 2_000),
                policy="lru",
                hierarchy=TINY.hierarchy,
                warmup_fraction=TINY.warmup_fraction,
            )
            for name in ("gamess", "soplex")
        ]
        engine = ParallelRunner(jobs=2, store=ResultStore(tmp_path),
                                verbose=False, command=["compare", "-x"],
                                backend="fleet")
        engine.run(cells, label="t")
        manifest = engine.last_manifest
        assert manifest.exec_info["backend"] == "fleet"
        assert manifest.exec_info["jobs"] == "2"
        assert RunManifest.load(tmp_path, manifest.run_id).exec_info \
            == manifest.exec_info


class TestCliResume:
    def _victim_key(self):
        scale = TINY
        cell = SingleCell(
            trace=TraceSpec("soplex", scale.hierarchy.llc_bytes,
                            scale.segment_accesses),
            policy="lru",
            hierarchy=scale.hierarchy,
            warmup_fraction=scale.warmup_fraction,
        )
        return stable_hash(cell.key_payload())

    def test_failed_run_resumes_pending_cells_only(self, tmp_path,
                                                   monkeypatch, capsys):
        cache = str(tmp_path / "cache")
        argv = ["compare", "--benchmarks", "gamess", "soplex",
                "--policies", "lru", "--scale", "tiny", "--cache-dir", cache]
        victim = self._victim_key()
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"raise:key={victim[:16]},times=99")
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "1 cell(s) failed" in err
        assert "resume with" in err

        [manifest] = list_runs(cache)
        assert manifest.pending() == {victim}
        assert manifest.command == argv

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert main(["resume", manifest.run_id[:12],
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        # The completed cell is a store hit; only the victim recomputes.
        assert "hits=1/2" in out
        [manifest] = list_runs(cache)
        assert manifest.is_complete

    def test_resume_honors_exec_overrides(self, tmp_path, monkeypatch,
                                          capsys):
        cache = str(tmp_path / "cache")
        argv = ["compare", "--benchmarks", "gamess", "soplex",
                "--policies", "lru", "--scale", "tiny",
                "--cache-dir", cache, "--jobs", "1"]
        victim = self._victim_key()
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"raise:key={victim[:16]},times=99")
        assert main(argv) == 1
        capsys.readouterr()
        [manifest] = list_runs(cache)
        run_id = manifest.run_id

        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert main(["resume", run_id[:12], "--cache-dir", cache,
                     "--jobs", "2", "--backend", "fleet"]) == 0
        out = capsys.readouterr().out
        assert "--backend fleet" in out  # overrides in the re-driven argv
        # Exec flags never enter the run id: the same manifest was
        # reopened, finished, and now records the overridden settings.
        [manifest] = list_runs(cache)
        assert manifest.run_id == run_id
        assert manifest.is_complete
        assert manifest.exec_info["backend"] == "fleet"
        assert manifest.exec_info["jobs"] == "2"

    def test_resume_lists_runs(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["resume", "--cache-dir", cache]) == 0
        assert "no recorded runs" in capsys.readouterr().out

        RunManifest.create(cache, label="t",
                           command=["compare", "--scale", "tiny"], cells=CELLS)
        assert main(["resume", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "resumable" in out
        assert "compare --scale tiny" in out

    def test_resume_rejects_unknown_and_ambiguous(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["resume", "feed", "--cache-dir", cache]) == 2
        assert "no recorded run" in capsys.readouterr().err

    def test_resume_needs_cache(self, capsys):
        assert main(["resume", "--cache-dir", "off"]) == 2
        assert "result cache" in capsys.readouterr().err

    def test_complete_run_is_a_no_op(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        manifest = RunManifest.create(cache, label="t", command=["compare"],
                                      cells=CELLS[:1])
        manifest.mark(CELLS[0][0], "done")
        assert main(["resume", manifest.run_id[:12],
                     "--cache-dir", cache]) == 0
        assert "already complete" in capsys.readouterr().out

    def test_library_run_cannot_be_resumed(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        manifest = RunManifest.create(cache, label="lib", command=[],
                                      cells=CELLS)
        assert main(["resume", manifest.run_id[:12],
                     "--cache-dir", cache]) == 2
        assert "library" in capsys.readouterr().err
