"""Tests for the trace model, synthetic kernels, workload suite, and mixes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.mixes import generate_mixes, split_train_test
from repro.traces.synth import (
    BurstyAccess,
    GatherScatter,
    HotCold,
    ObjectWalk,
    PhaseSpec,
    PointerChase,
    RegionScan,
    StackChurn,
    compose,
)
from repro.traces.trace import MemoryAccess, Segment, Trace
from repro.traces.workloads import (
    all_segments,
    benchmark_names,
    build_segments,
    build_suite,
    get_benchmark,
)

LLC = 512 * 1024


class TestTrace:
    def test_from_accesses_roundtrip(self):
        tuples = [(0x400, 0x1000, False, 2), (0x404, 0x1040, True, 3)]
        trace = Trace.from_accesses("t", tuples)
        assert len(trace) == 2
        accesses = list(trace)
        assert accesses[0] == MemoryAccess(0x400, 0x1000, False, 2)
        assert accesses[1] == MemoryAccess(0x404, 0x1040, True, 6)

    def test_instruction_count(self):
        trace = Trace.from_accesses("t", [(1, 2, False, 4), (1, 2, False, 0)])
        assert trace.num_instructions == 6
        assert trace.num_accesses == 2

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            Trace.from_accesses("t", [(1, 2, False, -1)])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace("t", [1], [2, 3], [False], [0])

    def test_slice(self):
        trace = Trace.from_accesses(
            "t", [(i, 64 * i, False, 1) for i in range(10)]
        )
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub.pcs == [2, 3, 4]

    def test_segment_rejects_nonpositive_weight(self):
        trace = Trace.from_accesses("t", [(1, 2, False, 0)])
        with pytest.raises(ValueError):
            Segment("s", trace, 0.0)


class TestKernels:
    def _take(self, kernel, n=200, seed=1):
        stream = kernel(random.Random(seed))
        return [next(stream) for _ in range(n)]

    def test_region_scan_stays_in_region(self):
        kernel = RegionScan(base=0x10000, size=4096)
        for pc, addr, _, gap in self._take(kernel):
            assert 0x10000 <= addr < 0x10000 + 4096
            assert gap >= 0

    def test_region_scan_is_sequential(self):
        kernel = RegionScan(base=0, size=1 << 20, stride=64, write_ratio=0.0)
        accesses = self._take(kernel, 50)
        deltas = {b[1] - a[1] for a, b in zip(accesses, accesses[1:])}
        # Monotone stride except at the wrap point.
        assert deltas <= {64, 64 - (1 << 20)}

    def test_pointer_chase_is_permutation(self):
        kernel = PointerChase(base=0, nodes=32, node_size=64)
        addrs = [rec[1] for rec in self._take(kernel, 32)]
        assert len(set(addrs)) == 32  # full cycle before repeating

    def test_pointer_chase_repeats_cycle(self):
        kernel = PointerChase(base=0, nodes=16, node_size=64)
        addrs = [rec[1] for rec in self._take(kernel, 32)]
        assert addrs[:16] == addrs[16:]

    def test_pointer_chase_headers_are_dependent_loads(self):
        kernel = PointerChase(base=0, nodes=16, node_size=64)
        records = self._take(kernel, 16)
        assert all(len(rec) == 5 and rec[4] for rec in records)

    def test_hot_cold_prefers_hot(self):
        kernel = HotCold(hot_base=0, hot_size=4096,
                         cold_base=1 << 20, cold_size=1 << 20, hot_prob=0.9)
        accesses = self._take(kernel, 500)
        hot = sum(1 for _, a, _, _ in accesses if a < 4096)
        assert hot > 350

    def test_hot_cold_cold_blocks_not_revisited(self):
        kernel = HotCold(hot_base=0, hot_size=4096,
                         cold_base=1 << 20, cold_size=1 << 24, hot_prob=0.5)
        cold = [a >> 6 for _, a, _, _ in self._take(kernel, 400) if a >= 1 << 20]
        assert len(cold) == len(set(cold))

    def test_object_walk_offsets_match_fields(self):
        fields = (0, 8, 24)
        kernel = ObjectWalk(base=0, objects=64, object_size=128, fields=fields)
        for _, addr, _, _ in self._take(kernel, 300):
            assert addr % 128 in fields

    def test_object_walk_field_pcs_distinct(self):
        kernel = ObjectWalk(base=0, objects=64, pc_base=0x1000)
        pcs = {pc for pc, _, _, _ in self._take(kernel, 300)}
        assert len(pcs) > 1

    def test_bursty_access_repeats_blocks(self):
        kernel = BurstyAccess(base=0, blocks=1024, burst_lo=3, burst_hi=3)
        accesses = self._take(kernel, 30)
        blocks = [a >> 6 for _, a, _, _ in accesses]
        repeats = sum(1 for x, y in zip(blocks, blocks[1:]) if x == y)
        assert repeats >= len(blocks) // 2

    def test_gather_scatter_covers_region(self):
        kernel = GatherScatter(base=0, size=1 << 16)
        blocks = {a >> 6 for _, a, _, _ in self._take(kernel, 2000)}
        assert len(blocks) > 400

    def test_stack_churn_write_then_read(self):
        kernel = StackChurn(base=0)
        accesses = self._take(kernel, 400)
        # Every popped (read) frame must have been pushed (written) before.
        written = set()
        for _, addr, is_write, _ in accesses:
            if is_write:
                written.add(addr)
            else:
                assert addr in written

    def test_kernels_deterministic(self):
        kernel = GatherScatter(base=0, size=1 << 16)
        assert self._take(kernel, 100, seed=42) == self._take(kernel, 100, seed=42)


class TestCompose:
    def test_produces_exact_count(self):
        spec = PhaseSpec([(RegionScan(base=0, size=4096), 1.0)])
        assert len(compose(spec, 123, seed=5)) == 123

    def test_mixture_uses_all_kernels(self):
        spec = PhaseSpec([
            (RegionScan(base=0, size=4096, pc_base=0x1000), 1.0),
            (GatherScatter(base=1 << 20, size=4096, pc_base=0x2000), 1.0),
        ], run_length=16)
        accesses = compose(spec, 2000, seed=9)
        pcs = {pc for pc, _, _, _ in accesses}
        assert any(pc < 0x2000 for pc in pcs)
        assert any(pc >= 0x2000 for pc in pcs)

    def test_deterministic(self):
        spec = PhaseSpec([
            (RegionScan(base=0, size=4096), 2.0),
            (GatherScatter(base=1 << 20, size=4096), 1.0),
        ])
        assert compose(spec, 500, seed=11) == compose(spec, 500, seed=11)

    def test_seed_changes_stream(self):
        spec = PhaseSpec([(GatherScatter(base=0, size=1 << 16), 1.0)])
        assert compose(spec, 200, seed=1) != compose(spec, 200, seed=2)

    def test_rejects_empty_kernels(self):
        with pytest.raises(ValueError):
            PhaseSpec([])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            PhaseSpec([(RegionScan(base=0, size=64), 0.0)])


class TestWorkloadSuite:
    def test_suite_has_33_benchmarks(self):
        assert len(benchmark_names()) == 33

    def test_expected_names_present(self):
        names = set(benchmark_names())
        for expected in ("mcf", "gcc", "lbm", "data_caching", "graph_analytics",
                         "sat_solver", "mlpack_cf", "xalancbmk"):
            assert expected in names

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_build_segments_weights_and_lengths(self):
        segments = build_segments("gcc", LLC, accesses=500)
        assert len(segments) == 3
        assert all(len(s.trace) == 500 for s in segments)
        assert sum(s.weight for s in segments) == pytest.approx(1.0)

    def test_segments_deterministic(self):
        a = build_segments("mcf", LLC, accesses=300, seed=7)
        b = build_segments("mcf", LLC, accesses=300, seed=7)
        assert a[0].trace.addresses == b[0].trace.addresses

    def test_benchmarks_use_disjoint_address_spaces(self):
        mcf = build_segments("mcf", LLC, accesses=300)[0].trace
        gcc = build_segments("gcc", LLC, accesses=300)[0].trace
        assert not (set(a >> 40 for a in mcf.addresses)
                    & set(a >> 40 for a in gcc.addresses))

    def test_all_segments_flattens(self):
        segments = all_segments(LLC, accesses=100, names=["mcf", "lbm"])
        assert len(segments) == 3  # mcf has 2 segments, lbm has 1

    def test_build_suite_subset(self):
        suite = build_suite(LLC, accesses=100, names=["lbm"])
        assert set(suite) == {"lbm"}

    def test_streaming_benchmark_exceeds_llc(self):
        lbm = build_segments("lbm", LLC, accesses=20_000)[0].trace
        footprint_blocks = len({a >> 6 for a in lbm.addresses})
        assert footprint_blocks * 64 > LLC  # dead-on-arrival regime

    def test_cache_friendly_benchmark_fits(self):
        gamess = build_segments("gamess", LLC, accesses=20_000)[0].trace
        footprint_blocks = len({a >> 6 for a in gamess.addresses})
        assert footprint_blocks * 64 < LLC


class TestMixes:
    def _segments(self, count=10):
        trace = Trace.from_accesses("t", [(1, 64, False, 1)])
        return [Segment(f"s{i}", trace, 1.0) for i in range(count)]

    def test_generates_requested_count(self):
        mixes = generate_mixes(self._segments(), count=5)
        assert len(mixes) == 5
        assert all(len(m.segments) == 4 for m in mixes)

    def test_mix_members_distinct(self):
        for mix in generate_mixes(self._segments(), count=20):
            names = [s.name for s in mix.segments]
            assert len(names) == len(set(names))

    def test_deterministic(self):
        a = generate_mixes(self._segments(), count=5, seed=3)
        b = generate_mixes(self._segments(), count=5, seed=3)
        assert [[s.name for s in m.segments] for m in a] == \
            [[s.name for s in m.segments] for m in b]

    def test_mixes_are_distinct(self):
        mixes = generate_mixes(self._segments(30), count=50)
        keys = {tuple(s.name for s in m.segments) for m in mixes}
        assert len(keys) == 50

    def test_rejects_too_few_segments(self):
        with pytest.raises(ValueError):
            generate_mixes(self._segments(3), count=1)

    def test_split_train_test(self):
        mixes = generate_mixes(self._segments(), count=10)
        train, test = split_train_test(mixes, 3)
        assert len(train) == 3 and len(test) == 7
        assert train[0].name == "mix0000"

    def test_split_rejects_bad_counts(self):
        mixes = generate_mixes(self._segments(), count=4)
        with pytest.raises(ValueError):
            split_train_test(mixes, 0)
        with pytest.raises(ValueError):
            split_train_test(mixes, 4)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=1, max_value=6))
    def test_property_counts(self, pool, count):
        mixes = generate_mixes(self._segments(pool), count=count)
        assert len(mixes) == count
