"""Tests for the distributed execution mesh: framing protocol, worker
serve loop, and the pluggable fleet/ssh/local backends.

The live-subprocess tests spawn real ``python -m repro.exec.worker``
processes and drive them through the exact frames the runner sends, so
every failure mode the drive loop depends on — structured errors,
worker loss, discard filtering, rebuilds — is exercised against the
real transport, not a mock.
"""

import io
import pickle
import sys
import time

import pytest

from repro.config import TINY
from repro.exec import SingleCell, TraceSpec, stable_hash
from repro.exec.backends import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    LocalPoolBackend,
    SSHBackend,
    WorkerFleetBackend,
    parse_worker_spec,
    resolve_backend_name,
    resolve_slots,
    resolve_workers_spec,
    total_slots,
    worker_command,
)
from repro.exec.faults import ConfigError, RemoteCellError, make_failure
from repro.exec.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    FrameError,
    FrameOversized,
    FrameTruncated,
    read_frame,
    write_frame,
)
from repro.exec.worker import serve

ACCESSES = 2_000


def _cell(benchmark="gamess", policy="lru"):
    return SingleCell(
        trace=TraceSpec(benchmark, TINY.hierarchy.llc_bytes, ACCESSES),
        policy=policy,
        hierarchy=TINY.hierarchy,
        warmup_fraction=TINY.warmup_fraction,
    )


def _request(cell):
    return {
        "cell": cell,
        "key": stable_hash(cell.key_payload()),
        "artifact_root": None,
        "attempt": 1,
        "telemetry": False,
        "deny_loads": (),
    }


def _serial_result(cell):
    from repro.exec.runner import _execute_cell

    result, _, _, _ = _execute_cell(
        cell, stable_hash(cell.key_payload()), None, 1, False, False,
        frozenset())
    return result


def _encode(*messages) -> io.BytesIO:
    stream = io.BytesIO()
    for message in messages:
        write_frame(stream, message)
    stream.seek(0)
    return stream


def _decode_all(buffer: bytes):
    stream = io.BytesIO(buffer)
    frames = []
    while True:
        message = read_frame(stream)
        if message is None:
            return frames
        frames.append(message)


def _run_frame(task_id, request):
    return {"op": "run", "id": task_id,
            "task": pickle.dumps(request,
                                 protocol=pickle.HIGHEST_PROTOCOL)}


class TestFraming:
    def test_round_trip(self):
        stream = _encode({"op": "hello", "pid": 42}, {"op": "shutdown"})
        assert read_frame(stream) == {"op": "hello", "pid": 42}
        assert read_frame(stream) == {"op": "shutdown"}
        assert read_frame(stream) is None  # clean EOF

    def test_empty_stream_is_clean_eof(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_header(self):
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(MAGIC + b"\x10"))

    def test_truncated_payload(self):
        stream = _encode({"op": "run", "id": 1})
        whole = stream.getvalue()
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(whole[:-3]))

    def test_bad_magic(self):
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(b"XXXX" + (4).to_bytes(4, "little") + b"abcd"))

    def test_oversized_declared_length_never_allocates(self):
        huge = (1 << 31).to_bytes(4, "little")
        with pytest.raises(FrameOversized):
            read_frame(io.BytesIO(MAGIC + huge))

    def test_oversized_write_refused(self, monkeypatch):
        from repro.exec import protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameOversized):
            protocol.write_frame(io.BytesIO(), {"blob": "x" * 1_000})

    def test_undecodable_payload(self):
        junk = b"\x00not a pickle"
        stream = io.BytesIO(
            MAGIC + len(junk).to_bytes(4, "little") + junk)
        with pytest.raises(FrameError):
            read_frame(stream)


class TestWorkerServe:
    """The worker frame loop, driven in-process over BytesIO pipes."""

    def _serve(self, *messages):
        writer = io.BytesIO()
        code = serve(_encode(*messages), writer)
        return code, _decode_all(writer.getvalue())

    def test_hello_then_clean_eof(self):
        code, frames = self._serve()
        assert code == 0
        [hello] = frames
        assert hello["op"] == "hello"
        assert hello["protocol"] == PROTOCOL_VERSION

    def test_shutdown_op_exits_cleanly(self):
        code, frames = self._serve({"op": "shutdown"})
        assert code == 0
        assert len(frames) == 1  # just the hello

    def test_truncated_request_stream_exits_nonzero(self):
        reader = io.BytesIO(MAGIC + (100).to_bytes(4, "little") + b"short")
        writer = io.BytesIO()
        assert serve(reader, writer) == 1

    def test_unknown_op_yields_protocol_error(self):
        code, frames = self._serve({"op": "launch-missiles"},
                                   {"op": "shutdown"})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["exc_type"] == "ProtocolError"

    def test_corrupt_nested_task_pickle_is_structured_error(self):
        # The envelope parses; the nested request does not.  The reply
        # must carry the task id so the parent can settle the cell.
        code, frames = self._serve(
            {"op": "run", "id": 7, "task": b"\x00garbage"})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 7

    def test_unimportable_cell_class_is_structured_error(self):
        # A GLOBAL opcode naming a module the worker does not have:
        # exactly what an unknown cell type looks like on the wire.
        bad_task = b"cno_such_module_xyz\nNoSuchCell\n."
        code, frames = self._serve({"op": "run", "id": 3, "task": bad_task})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 3
        assert "no_such_module_xyz" in error["message"]

    def test_config_frame_applies_and_unsets_env(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        code, frames = self._serve(
            {"op": "config",
             "env": {"REPRO_FAULT_INJECT": "raise:every=1,times=99"}},
            _run_frame(5, _request(_cell())),
            {"op": "config", "env": {"REPRO_FAULT_INJECT": None}},
        )
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 5
        assert error["exc_type"] == "InjectedFault"
        assert "REPRO_FAULT_INJECT" not in os.environ

    def test_run_executes_cell_bit_identically(self):
        cell = _cell()
        code, frames = self._serve(_run_frame(11, _request(cell)))
        assert code == 0
        reply = frames[1]
        assert reply["op"] == "result"
        assert reply["id"] == 11
        result, seconds, _, _ = reply["payload"]
        assert result == _serial_result(cell)
        assert seconds >= 0.0


def _poll_until(backend, deadline_s=120.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        frames = backend.poll(timeout=0.5)
        if frames:
            return frames
    raise AssertionError("no frame from backend before deadline")


class TestWorkerFleetBackend:
    """Live worker subprocesses over real pipes."""

    def test_executes_cell_and_matches_serial(self):
        cell = _cell()
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        try:
            backend.submit(1, _request(cell))
            assert backend.in_flight() == [1]
            [frame] = _poll_until(backend)
            assert frame.task_id == 1
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
            assert backend.in_flight() == []
        finally:
            backend.close()

    def test_remote_exception_surfaces_original_type(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "raise:every=1,times=99",
                 "REPRO_RETRY_BACKOFF": "0"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_ERROR
            exc = frame.payload
            assert isinstance(exc, RemoteCellError)
            # make_failure unwraps the remote wrapper, so the recorded
            # failure names the original exception type.
            failure = make_failure("cell", "key", exc, "error", 1)
            assert failure.exc_type == "InjectedFault"
            assert "InjectedFault" in failure.traceback
        finally:
            backend.close()

    def test_killed_worker_yields_lost_frame(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(4, _request(_cell()))
            backend._fleet[0].proc.kill()
            [frame] = _poll_until(backend)
            assert frame.task_id == 4
            assert frame.status == FRAME_LOST
            assert backend.in_flight() == []
        finally:
            backend.close()

    def test_submit_beyond_capacity_is_unavailable(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            with pytest.raises(BackendUnavailable):
                backend.submit(2, _request(_cell("soplex")))
        finally:
            backend.close()

    def test_discarded_task_never_surfaces(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(9, _request(_cell()))
            backend.discard(9)
            assert backend.in_flight() == []
            backend._fleet[0].proc.kill()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                assert backend.poll(timeout=0.2) == []
                if not backend._fleet[0].alive:
                    break
        finally:
            backend.close()

    def test_rebuild_returns_dropped_ids_and_restores_capacity(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=1"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            assert backend.rebuild() == [1]
            # The hang rule fired on attempt 1; the resubmitted attempt
            # runs clean on the fresh worker.
            request = _request(_cell())
            request["attempt"] = 2
            backend.submit(2, request)
            [frame] = _poll_until(backend)
            assert frame.task_id == 2
            assert frame.status == FRAME_OK
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        backend.close()
        backend.close()
        assert backend.in_flight() == []


class TestWorkerHealth:
    """Heartbeat liveness: hung or partitioned workers are declared
    lost after ``REPRO_HEARTBEAT_TIMEOUT`` instead of waiting for the
    cell watchdog; healthy-but-slow cells stay alive."""

    def test_silent_busy_worker_declared_lost(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT",
            "hb-loss:every=1,times=99;hang:every=1,seconds=600,times=99")
        backend = WorkerFleetBackend([worker_command()])
        assert backend._hb_timeout == pytest.approx(0.5)
        backend.start()
        try:
            started = time.monotonic()
            backend.submit(3, _request(_cell()))
            [frame] = _poll_until(backend, deadline_s=60.0)
            elapsed = time.monotonic() - started
            assert frame.task_id == 3
            assert frame.status == FRAME_LOST
            assert "heartbeat-lost" in frame.payload
            # The 600s hang was cut down to the heartbeat timeout.
            assert elapsed < 30.0
            assert backend.in_flight() == []
        finally:
            backend.close()

    def test_heartbeats_keep_slow_cell_alive(self, monkeypatch):
        # The cell stalls for several heartbeat timeouts, but the
        # worker's beat thread keeps the slot marked live: the result
        # must arrive as a normal OK frame, never a false loss.
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           "hang:every=1,seconds=2,times=99")
        cell = _cell()
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        try:
            backend.submit(5, _request(cell))
            [frame] = _poll_until(backend, deadline_s=60.0)
            assert frame.task_id == 5
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()

    def test_heartbeats_off_cost_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
        backend = WorkerFleetBackend([worker_command()])
        assert backend._hb_timeout is None
        assert backend._check_heartbeats() == []


class TestDiscardSemantics:
    def test_soft_discard_frees_slot_without_rebuild(self):
        # A hedge race's losing copy: the slot finishes its (now
        # unwanted) cell, the late frame is filtered, and the slot is
        # immediately reusable — no kill, no rebuild.
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            backend.discard(1, kill=False)
            assert backend.in_flight() == []
            worker = backend._fleet[0]
            assert worker.alive
            deadline = time.monotonic() + 60.0
            while worker.task_id is not None:
                assert time.monotonic() < deadline
                assert backend.poll(timeout=0.2) == []
            assert worker.alive  # the slot survived its loss
            cell = _cell("soplex")
            backend.submit(2, _request(cell))
            [frame] = _poll_until(backend)
            assert frame.task_id == 2
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()

    def test_hard_discard_retires_slot_until_rebuild(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=1"})
        backend.start()
        try:
            backend.submit(7, _request(_cell()))
            backend.discard(7)  # kill=True: watchdog-style abandonment
            assert backend.in_flight() == []
            with pytest.raises(BackendUnavailable):
                backend.submit(8, _request(_cell("soplex")))
            # The discarded task was already abandoned, so the rebuild
            # reports nothing to requeue — but restores capacity, and
            # no late frame from the old generation ever surfaces.
            assert backend.rebuild() == []
            assert backend.poll(timeout=0.1) == []
            request = _request(_cell())
            request["attempt"] = 2  # the times=1 hang rule skips this
            backend.submit(9, request)
            [frame] = _poll_until(backend)
            assert frame.task_id == 9
            assert frame.status == FRAME_OK
        finally:
            backend.close()

    def test_idle_worker_death_shrinks_capacity(self):
        backend = WorkerFleetBackend(
            [worker_command()] * 2,
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            victim = backend._fleet[0]
            victim.proc.kill()
            deadline = time.monotonic() + 30.0
            while victim.alive and time.monotonic() < deadline:
                # An idle death produces no lost frame — no task was
                # riding the slot — it only shrinks capacity.
                assert backend.poll(timeout=0.2) == []
            assert not victim.alive
            backend.submit(1, _request(_cell()))
            with pytest.raises(BackendUnavailable):
                backend.submit(2, _request(_cell("soplex")))
        finally:
            backend.close()


#: A worker that shouts on stderr before serving: exercises the
#: stderr ring buffer that failure messages quote.
_NOISY_WORKER = [
    sys.executable, "-c",
    "import sys, runpy; print('chaos-canary: mount gone', file=sys.stderr); "
    "sys.stderr.flush(); sys.argv = sys.argv[:1]; "
    "runpy.run_module('repro.exec.worker', run_name='__main__')",
]


class TestStderrTail:
    def test_lost_frame_carries_stderr_tail(self):
        backend = WorkerFleetBackend(
            [_NOISY_WORKER],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            worker = backend._fleet[0]
            # Wait for the worker to boot (hello) and the canary line
            # to land in the ring before killing it mid-cell.
            deadline = time.monotonic() + 60.0
            while not (worker.ready and worker.stderr_tail):
                assert time.monotonic() < deadline
                backend.poll(timeout=0.1)
            backend.submit(4, _request(_cell()))
            worker.proc.kill()
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_LOST
            assert "worker stderr tail" in frame.payload
            assert "chaos-canary: mount gone" in frame.payload
        finally:
            backend.close()

    def test_tail_ring_is_bounded(self):
        from repro.exec.backends.fleet import _STDERR_TAIL_LINES, _Worker

        worker = _Worker(proc=None, index=0)
        for index in range(_STDERR_TAIL_LINES * 3):
            worker.stderr_tail.append(f"line {index}")
        assert len(worker.stderr_tail) == _STDERR_TAIL_LINES
        assert worker.stderr_tail[0] == f"line {_STDERR_TAIL_LINES * 2}"


class TestLocalPoolBackend:
    def test_executes_cell_and_matches_serial(self):
        cell = _cell()
        backend = LocalPoolBackend(1)
        backend.start()
        try:
            backend.submit(1, _request(cell))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()


class TestWorkerSpec:
    def test_parses_hosts_and_slots(self):
        assert parse_worker_spec("hostA:4,hostB") == [("hostA", 4),
                                                      ("hostB", 1)]
        assert total_slots("hostA:4,hostB:2,hostC") == 7

    def test_ipv6_style_colons_take_last_field(self):
        assert parse_worker_spec("node-1.lan:2") == [("node-1.lan", 2)]

    @pytest.mark.parametrize("spec", ["", "  ", "host:abc", "host:0", ":3"])
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_worker_spec(spec)


class TestBackendResolution:
    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        assert resolve_backend_name("local") == "local"
        assert resolve_backend_name() == "fleet"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            resolve_backend_name("carrier-pigeon")

    def test_workers_spec_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers_spec(None) is None
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers_spec(None) == "3"
        assert resolve_workers_spec("hostA:2") == "hostA:2"

    def test_slot_sizing(self):
        assert resolve_slots("local", 4, None) == 4
        assert resolve_slots("fleet", 4, None) == 4
        assert resolve_slots("fleet", 4, "2") == 2
        assert resolve_slots("ssh", 4, "a:2,b") == 3

    def test_fleet_slots_must_be_numeric_and_positive(self):
        with pytest.raises(ConfigError):
            resolve_slots("fleet", 4, "hostA:2")
        with pytest.raises(ConfigError):
            resolve_slots("fleet", 4, "0")

    def test_ssh_requires_a_spec(self):
        with pytest.raises(ConfigError):
            resolve_slots("ssh", 4, None)


#: A stand-in ssh client: ignores the appended "host python -m ..."
#: operands and runs the worker module locally, so the tunnel path is
#: exercised end to end without an sshd.
_FAKE_SSH = (
    "import sys, runpy; sys.argv = sys.argv[:1]; "
    "runpy.run_module('repro.exec.worker', run_name='__main__')"
)


class TestSSHBackend:
    def test_builds_one_command_per_slot(self):
        backend = SSHBackend([("hostA", 2), ("hostB", 1)],
                             python="python3",
                             ssh_command=["ssh", "-o", "BatchMode=yes"])
        expected_a = ["ssh", "-o", "BatchMode=yes", "hostA", "python3",
                      "-m", "repro.exec.worker"]
        expected_b = ["ssh", "-o", "BatchMode=yes", "hostB", "python3",
                      "-m", "repro.exec.worker"]
        assert backend._commands == [expected_a, expected_a, expected_b]
        assert backend.workers == 3

    def test_env_knobs_override_client_and_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSH_COMMAND", "ssh -p 2222")
        monkeypatch.setenv("REPRO_REMOTE_PYTHON", "/opt/py/bin/python")
        backend = SSHBackend([("hostA", 1)])
        assert backend._commands == [
            ["ssh", "-p", "2222", "hostA", "/opt/py/bin/python",
             "-m", "repro.exec.worker"]]

    def test_tunnel_executes_cell_with_fake_ssh(self):
        cell = _cell()
        backend = SSHBackend([("ignored-host", 1)],
                             ssh_command=[sys.executable, "-c", _FAKE_SSH])
        backend.start()
        try:
            backend.submit(1, _request(cell))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()

    def test_default_command_carries_connect_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSH_COMMAND", raising=False)
        monkeypatch.delenv("REPRO_SSH_CONNECT_TIMEOUT", raising=False)
        backend = SSHBackend([("hostA", 1)], python="python3")
        assert "ConnectTimeout=10" in backend._commands[0]
        monkeypatch.setenv("REPRO_SSH_CONNECT_TIMEOUT", "3")
        backend = SSHBackend([("hostA", 1)], python="python3")
        assert "ConnectTimeout=3" in backend._commands[0]

    def test_connect_timeout_off_disables_fast_fail(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSH_COMMAND", raising=False)
        monkeypatch.setenv("REPRO_SSH_CONNECT_TIMEOUT", "off")
        backend = SSHBackend([("hostA", 1)], python="python3")
        assert backend._connect_timeout is None
        assert not any("ConnectTimeout" in part
                       for part in backend._commands[0])

    def test_unreachable_host_fails_start_fast(self, monkeypatch):
        # An ssh client that dies like a refused connection: start()
        # must surface a clean BackendUnavailable within the connect
        # timeout, not hang until the first submit.
        monkeypatch.setenv("REPRO_SSH_CONNECT_TIMEOUT", "5")
        backend = SSHBackend(
            [("unreachable-host", 1)],
            ssh_command=[sys.executable, "-c", "import sys; sys.exit(255)"])
        started = time.monotonic()
        with pytest.raises(BackendUnavailable) as excinfo:
            backend.start()
        assert time.monotonic() - started < 20.0
        assert "before its hello" in str(excinfo.value)
        assert backend._fleet == []  # cleanly torn down
