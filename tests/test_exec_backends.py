"""Tests for the distributed execution mesh: framing protocol, worker
serve loop, and the pluggable fleet/ssh/local backends.

The live-subprocess tests spawn real ``python -m repro.exec.worker``
processes and drive them through the exact frames the runner sends, so
every failure mode the drive loop depends on — structured errors,
worker loss, discard filtering, rebuilds — is exercised against the
real transport, not a mock.
"""

import io
import pickle
import sys
import time

import pytest

from repro.config import TINY
from repro.exec import SingleCell, TraceSpec, stable_hash
from repro.exec.backends import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    LocalPoolBackend,
    SSHBackend,
    WorkerFleetBackend,
    parse_worker_spec,
    resolve_backend_name,
    resolve_slots,
    resolve_workers_spec,
    total_slots,
    worker_command,
)
from repro.exec.faults import ConfigError, RemoteCellError, make_failure
from repro.exec.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    FrameError,
    FrameOversized,
    FrameTruncated,
    read_frame,
    write_frame,
)
from repro.exec.worker import serve

ACCESSES = 2_000


def _cell(benchmark="gamess", policy="lru"):
    return SingleCell(
        trace=TraceSpec(benchmark, TINY.hierarchy.llc_bytes, ACCESSES),
        policy=policy,
        hierarchy=TINY.hierarchy,
        warmup_fraction=TINY.warmup_fraction,
    )


def _request(cell):
    return {
        "cell": cell,
        "key": stable_hash(cell.key_payload()),
        "artifact_root": None,
        "attempt": 1,
        "telemetry": False,
        "deny_loads": (),
    }


def _serial_result(cell):
    from repro.exec.runner import _execute_cell

    result, _, _, _ = _execute_cell(
        cell, stable_hash(cell.key_payload()), None, 1, False, False,
        frozenset())
    return result


def _encode(*messages) -> io.BytesIO:
    stream = io.BytesIO()
    for message in messages:
        write_frame(stream, message)
    stream.seek(0)
    return stream


def _decode_all(buffer: bytes):
    stream = io.BytesIO(buffer)
    frames = []
    while True:
        message = read_frame(stream)
        if message is None:
            return frames
        frames.append(message)


def _run_frame(task_id, request):
    return {"op": "run", "id": task_id,
            "task": pickle.dumps(request,
                                 protocol=pickle.HIGHEST_PROTOCOL)}


class TestFraming:
    def test_round_trip(self):
        stream = _encode({"op": "hello", "pid": 42}, {"op": "shutdown"})
        assert read_frame(stream) == {"op": "hello", "pid": 42}
        assert read_frame(stream) == {"op": "shutdown"}
        assert read_frame(stream) is None  # clean EOF

    def test_empty_stream_is_clean_eof(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_header(self):
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(MAGIC + b"\x10"))

    def test_truncated_payload(self):
        stream = _encode({"op": "run", "id": 1})
        whole = stream.getvalue()
        with pytest.raises(FrameTruncated):
            read_frame(io.BytesIO(whole[:-3]))

    def test_bad_magic(self):
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(b"XXXX" + (4).to_bytes(4, "little") + b"abcd"))

    def test_oversized_declared_length_never_allocates(self):
        huge = (1 << 31).to_bytes(4, "little")
        with pytest.raises(FrameOversized):
            read_frame(io.BytesIO(MAGIC + huge))

    def test_oversized_write_refused(self, monkeypatch):
        from repro.exec import protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameOversized):
            protocol.write_frame(io.BytesIO(), {"blob": "x" * 1_000})

    def test_undecodable_payload(self):
        junk = b"\x00not a pickle"
        stream = io.BytesIO(
            MAGIC + len(junk).to_bytes(4, "little") + junk)
        with pytest.raises(FrameError):
            read_frame(stream)


class TestWorkerServe:
    """The worker frame loop, driven in-process over BytesIO pipes."""

    def _serve(self, *messages):
        writer = io.BytesIO()
        code = serve(_encode(*messages), writer)
        return code, _decode_all(writer.getvalue())

    def test_hello_then_clean_eof(self):
        code, frames = self._serve()
        assert code == 0
        [hello] = frames
        assert hello["op"] == "hello"
        assert hello["protocol"] == PROTOCOL_VERSION

    def test_shutdown_op_exits_cleanly(self):
        code, frames = self._serve({"op": "shutdown"})
        assert code == 0
        assert len(frames) == 1  # just the hello

    def test_truncated_request_stream_exits_nonzero(self):
        reader = io.BytesIO(MAGIC + (100).to_bytes(4, "little") + b"short")
        writer = io.BytesIO()
        assert serve(reader, writer) == 1

    def test_unknown_op_yields_protocol_error(self):
        code, frames = self._serve({"op": "launch-missiles"},
                                   {"op": "shutdown"})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["exc_type"] == "ProtocolError"

    def test_corrupt_nested_task_pickle_is_structured_error(self):
        # The envelope parses; the nested request does not.  The reply
        # must carry the task id so the parent can settle the cell.
        code, frames = self._serve(
            {"op": "run", "id": 7, "task": b"\x00garbage"})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 7

    def test_unimportable_cell_class_is_structured_error(self):
        # A GLOBAL opcode naming a module the worker does not have:
        # exactly what an unknown cell type looks like on the wire.
        bad_task = b"cno_such_module_xyz\nNoSuchCell\n."
        code, frames = self._serve({"op": "run", "id": 3, "task": bad_task})
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 3
        assert "no_such_module_xyz" in error["message"]

    def test_config_frame_applies_and_unsets_env(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        code, frames = self._serve(
            {"op": "config",
             "env": {"REPRO_FAULT_INJECT": "raise:every=1,times=99"}},
            _run_frame(5, _request(_cell())),
            {"op": "config", "env": {"REPRO_FAULT_INJECT": None}},
        )
        assert code == 0
        error = frames[1]
        assert error["op"] == "error"
        assert error["id"] == 5
        assert error["exc_type"] == "InjectedFault"
        assert "REPRO_FAULT_INJECT" not in os.environ

    def test_run_executes_cell_bit_identically(self):
        cell = _cell()
        code, frames = self._serve(_run_frame(11, _request(cell)))
        assert code == 0
        reply = frames[1]
        assert reply["op"] == "result"
        assert reply["id"] == 11
        result, seconds, _, _ = reply["payload"]
        assert result == _serial_result(cell)
        assert seconds >= 0.0


def _poll_until(backend, deadline_s=120.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        frames = backend.poll(timeout=0.5)
        if frames:
            return frames
    raise AssertionError("no frame from backend before deadline")


class TestWorkerFleetBackend:
    """Live worker subprocesses over real pipes."""

    def test_executes_cell_and_matches_serial(self):
        cell = _cell()
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        try:
            backend.submit(1, _request(cell))
            assert backend.in_flight() == [1]
            [frame] = _poll_until(backend)
            assert frame.task_id == 1
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
            assert backend.in_flight() == []
        finally:
            backend.close()

    def test_remote_exception_surfaces_original_type(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "raise:every=1,times=99",
                 "REPRO_RETRY_BACKOFF": "0"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_ERROR
            exc = frame.payload
            assert isinstance(exc, RemoteCellError)
            # make_failure unwraps the remote wrapper, so the recorded
            # failure names the original exception type.
            failure = make_failure("cell", "key", exc, "error", 1)
            assert failure.exc_type == "InjectedFault"
            assert "InjectedFault" in failure.traceback
        finally:
            backend.close()

    def test_killed_worker_yields_lost_frame(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(4, _request(_cell()))
            backend._fleet[0].proc.kill()
            [frame] = _poll_until(backend)
            assert frame.task_id == 4
            assert frame.status == FRAME_LOST
            assert backend.in_flight() == []
        finally:
            backend.close()

    def test_submit_beyond_capacity_is_unavailable(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            with pytest.raises(BackendUnavailable):
                backend.submit(2, _request(_cell("soplex")))
        finally:
            backend.close()

    def test_discarded_task_never_surfaces(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=99"})
        backend.start()
        try:
            backend.submit(9, _request(_cell()))
            backend.discard(9)
            assert backend.in_flight() == []
            backend._fleet[0].proc.kill()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                assert backend.poll(timeout=0.2) == []
                if not backend._fleet[0].alive:
                    break
        finally:
            backend.close()

    def test_rebuild_returns_dropped_ids_and_restores_capacity(self):
        backend = WorkerFleetBackend(
            [worker_command()],
            env={"REPRO_FAULT_INJECT": "hang:every=1,seconds=600,times=1"})
        backend.start()
        try:
            backend.submit(1, _request(_cell()))
            assert backend.rebuild() == [1]
            # The hang rule fired on attempt 1; the resubmitted attempt
            # runs clean on the fresh worker.
            request = _request(_cell())
            request["attempt"] = 2
            backend.submit(2, request)
            [frame] = _poll_until(backend)
            assert frame.task_id == 2
            assert frame.status == FRAME_OK
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = WorkerFleetBackend([worker_command()])
        backend.start()
        backend.close()
        backend.close()
        assert backend.in_flight() == []


class TestLocalPoolBackend:
    def test_executes_cell_and_matches_serial(self):
        cell = _cell()
        backend = LocalPoolBackend(1)
        backend.start()
        try:
            backend.submit(1, _request(cell))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()


class TestWorkerSpec:
    def test_parses_hosts_and_slots(self):
        assert parse_worker_spec("hostA:4,hostB") == [("hostA", 4),
                                                      ("hostB", 1)]
        assert total_slots("hostA:4,hostB:2,hostC") == 7

    def test_ipv6_style_colons_take_last_field(self):
        assert parse_worker_spec("node-1.lan:2") == [("node-1.lan", 2)]

    @pytest.mark.parametrize("spec", ["", "  ", "host:abc", "host:0", ":3"])
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_worker_spec(spec)


class TestBackendResolution:
    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        assert resolve_backend_name("local") == "local"
        assert resolve_backend_name() == "fleet"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            resolve_backend_name("carrier-pigeon")

    def test_workers_spec_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers_spec(None) is None
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers_spec(None) == "3"
        assert resolve_workers_spec("hostA:2") == "hostA:2"

    def test_slot_sizing(self):
        assert resolve_slots("local", 4, None) == 4
        assert resolve_slots("fleet", 4, None) == 4
        assert resolve_slots("fleet", 4, "2") == 2
        assert resolve_slots("ssh", 4, "a:2,b") == 3

    def test_fleet_slots_must_be_numeric_and_positive(self):
        with pytest.raises(ConfigError):
            resolve_slots("fleet", 4, "hostA:2")
        with pytest.raises(ConfigError):
            resolve_slots("fleet", 4, "0")

    def test_ssh_requires_a_spec(self):
        with pytest.raises(ConfigError):
            resolve_slots("ssh", 4, None)


#: A stand-in ssh client: ignores the appended "host python -m ..."
#: operands and runs the worker module locally, so the tunnel path is
#: exercised end to end without an sshd.
_FAKE_SSH = (
    "import sys, runpy; sys.argv = sys.argv[:1]; "
    "runpy.run_module('repro.exec.worker', run_name='__main__')"
)


class TestSSHBackend:
    def test_builds_one_command_per_slot(self):
        backend = SSHBackend([("hostA", 2), ("hostB", 1)],
                             python="python3",
                             ssh_command=["ssh", "-o", "BatchMode=yes"])
        expected_a = ["ssh", "-o", "BatchMode=yes", "hostA", "python3",
                      "-m", "repro.exec.worker"]
        expected_b = ["ssh", "-o", "BatchMode=yes", "hostB", "python3",
                      "-m", "repro.exec.worker"]
        assert backend._commands == [expected_a, expected_a, expected_b]
        assert backend.workers == 3

    def test_env_knobs_override_client_and_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSH_COMMAND", "ssh -p 2222")
        monkeypatch.setenv("REPRO_REMOTE_PYTHON", "/opt/py/bin/python")
        backend = SSHBackend([("hostA", 1)])
        assert backend._commands == [
            ["ssh", "-p", "2222", "hostA", "/opt/py/bin/python",
             "-m", "repro.exec.worker"]]

    def test_tunnel_executes_cell_with_fake_ssh(self):
        cell = _cell()
        backend = SSHBackend([("ignored-host", 1)],
                             ssh_command=[sys.executable, "-c", _FAKE_SSH])
        backend.start()
        try:
            backend.submit(1, _request(cell))
            [frame] = _poll_until(backend)
            assert frame.status == FRAME_OK
            result, _, _, _ = frame.payload
            assert result == _serial_result(cell)
        finally:
            backend.close()
