"""Tests for the parallel experiment engine (``repro.exec``).

Covers the tentpole guarantees: parallel results equal serial results
cell-for-cell, the serial path equals the direct (pre-engine) runner
entry points, and warm-cache invocations return identical results
while reporting hits.
"""

import pytest

from repro.config import TINY
from repro.core.presets import single_thread_config, table_1b_features
from repro.exec import (
    MixCell,
    ParallelRunner,
    SearchCell,
    SingleCell,
    SuiteSpec,
    TraceSpec,
    resolve_jobs,
)
from repro.policies import policy_factory
from repro.search.evaluator import FeatureSetEvaluator
from repro.sim.multi import MultiProgrammedRunner
from repro.sim.single import SingleThreadRunner
from repro.traces.mixes import generate_mixes
from repro.traces.workloads import build_segments, build_suite

ACCESSES = 2_500
BENCHMARKS = ("gamess", "soplex")
POLICIES = ("lru", "mpppb-1a")


def _single_cells():
    return [
        SingleCell(
            trace=TraceSpec(name, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in POLICIES
        for name in BENCHMARKS
    ]


def _mix_cells():
    suite_spec = SuiteSpec(TINY.hierarchy.llc_bytes, ACCESSES)
    suite = build_suite(TINY.hierarchy.llc_bytes, ACCESSES)
    segments = [s for name in sorted(suite) for s in suite[name]]
    mixes = generate_mixes(segments, 2)
    return [
        MixCell(
            suite=suite_spec,
            mix_name=mix.name,
            segment_names=tuple(s.name for s in mix.segments),
            policy="lru",
            hierarchy=TINY.multi_hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for mix in mixes
    ], mixes


class TestJobsResolution:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestSingleCells:
    @pytest.fixture(scope="class")
    def serial_results(self):
        runner = ParallelRunner(jobs=1, store=None)
        return runner.run(_single_cells())

    def test_serial_matches_direct_runner(self, serial_results):
        runner = SingleThreadRunner(TINY.hierarchy,
                                    warmup_fraction=TINY.warmup_fraction)
        index = 0
        for policy in POLICIES:
            for name in BENCHMARKS:
                segments = build_segments(name, TINY.hierarchy.llc_bytes,
                                          ACCESSES)
                direct = runner.run_benchmark(name, segments,
                                              policy_factory(policy))
                assert serial_results[index] == direct
                index += 1

    def test_parallel_equals_serial_cell_for_cell(self, serial_results):
        parallel = ParallelRunner(jobs=2, store=None).run(_single_cells())
        assert parallel == serial_results

    def test_warm_cache_hits_and_identical_results(self, serial_results,
                                                   tmp_path_factory):
        from repro.exec import ResultStore

        root = tmp_path_factory.mktemp("cache")
        cold = ParallelRunner(jobs=1, store=ResultStore(root))
        first = cold.run(_single_cells())
        assert cold.last_report.misses == len(first)
        warm = ParallelRunner(jobs=1, store=ResultStore(root))
        second = warm.run(_single_cells())
        assert warm.last_report.hits == len(second)
        assert warm.last_report.misses == 0
        assert second == first == serial_results


class TestMixCells:
    def test_parallel_equals_serial_equals_direct(self):
        cells, mixes = _mix_cells()
        serial = ParallelRunner(jobs=1, store=None).run(cells)
        parallel = ParallelRunner(jobs=2, store=None).run(cells)
        assert parallel == serial

        runner = MultiProgrammedRunner(TINY.multi_hierarchy,
                                       warmup_fraction=TINY.warmup_fraction)
        direct = [runner.run_mix(mix, policy_factory("lru")) for mix in mixes]
        assert serial == direct

    def test_mix_cache_round_trip(self, tmp_path):
        from repro.exec import ResultStore

        cells, _ = _mix_cells()
        store = ResultStore(tmp_path)
        first = ParallelRunner(jobs=1, store=store).run(cells)
        second = ParallelRunner(jobs=1, store=store).run(cells)
        assert second == first
        assert store.stats.hits == len(cells)


class TestSearchCells:
    SPEC = SuiteSpec(TINY.hierarchy.llc_bytes, 2_000, names=("gamess",))

    def test_engine_evaluation_matches_plain_evaluator(self):
        features = (single_thread_config("a").features,
                    table_1b_features())
        plain = FeatureSetEvaluator.from_spec(self.SPEC, TINY.hierarchy,
                                              warmup_fraction=TINY.warmup_fraction)
        expected = [plain.evaluate(fs) for fs in features]

        engine = ParallelRunner(jobs=2, store=None)
        fanned = FeatureSetEvaluator.from_spec(
            self.SPEC, TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction, executor=engine,
        )
        assert fanned.evaluate_many(features) == expected
        # In-memory memoization still works on top of the engine.
        evaluations = fanned.evaluations
        assert fanned.evaluate_many(features) == expected
        assert fanned.evaluations == evaluations

    def test_search_cell_runs_standalone(self):
        cell = SearchCell(
            suite=self.SPEC,
            features=table_1b_features(),
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        [value] = ParallelRunner(jobs=1, store=None).run([cell])
        assert value > 0

    def test_evaluate_many_dedups_duplicates(self):
        plain = FeatureSetEvaluator.from_spec(self.SPEC, TINY.hierarchy,
                                              warmup_fraction=TINY.warmup_fraction)
        features = table_1b_features()
        values = plain.evaluate_many([features, features])
        assert values[0] == values[1]
        assert plain.evaluations == 1


class TestSearchBatches:
    """run_search_batches: batch execution, per-candidate cache keys."""

    SPEC = SuiteSpec(TINY.hierarchy.llc_bytes, 2_000, names=("gamess",))

    def _cells(self, k=4, seed=31):
        import random

        from repro.core.features import random_feature_set

        rng = random.Random(seed)
        feature_sets = [single_thread_config("a").features,
                        table_1b_features()]
        while len(feature_sets) < k:
            feature_sets.append(random_feature_set(rng))
        return [
            SearchCell(
                suite=self.SPEC,
                features=features,
                hierarchy=TINY.hierarchy,
                warmup_fraction=TINY.warmup_fraction,
            )
            for features in feature_sets[:k]
        ]

    @staticmethod
    def _clear_memos():
        # Evaluators memoize MPKI in process; clear so each engine run
        # genuinely computes instead of replaying the shared memo.
        from repro.exec import runner as exec_runner

        exec_runner._RUNNERS.clear()

    def test_batched_matches_plain_run(self):
        cells = self._cells()
        self._clear_memos()
        expected = ParallelRunner(jobs=1, store=None).run(cells)
        self._clear_memos()
        engine = ParallelRunner(jobs=1, store=None)
        assert engine.run_search_batches(cells, label="batch") == expected
        report = engine.last_report
        assert report.batches == 1
        assert report.batched == len(cells)
        assert report.misses == len(cells)
        assert "batched=" in report.summary()

    def test_store_interop_both_directions(self, tmp_path):
        from repro.exec.store import ResultStore

        cells = self._cells()
        self._clear_memos()
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store)
        values = engine.run_search_batches(cells)
        # Batch results were stored per candidate: a plain run() is
        # served entirely from the cache, and so is a second batch run.
        self._clear_memos()
        warm = ParallelRunner(jobs=1, store=store)
        assert warm.run(cells) == values
        assert warm.last_report.hits == len(cells)
        assert warm.run_search_batches(cells) == values
        assert warm.last_report.hits == len(cells)
        assert warm.last_report.batches == 0

    def test_batch_size_chunks_and_singleton(self):
        cells = self._cells()
        self._clear_memos()
        baseline = ParallelRunner(jobs=1, store=None).run(cells)
        self._clear_memos()
        engine = ParallelRunner(jobs=1, store=None)
        values = engine.run_search_batches(cells, batch_size=3)
        assert values == baseline
        report = engine.last_report
        # 4 candidates at batch_size=3: one 3-wide batch plus one
        # plain single-cell task.
        assert report.batches == 1
        assert report.batched == 3
        assert report.cells == len(cells)

    def test_parallel_matches_serial(self):
        cells = self._cells()
        self._clear_memos()
        serial = ParallelRunner(jobs=1, store=None).run_search_batches(
            cells, batch_size=2)
        self._clear_memos()
        parallel = ParallelRunner(jobs=2, store=None).run_search_batches(
            cells, batch_size=2)
        assert parallel == serial


class TestReport:
    def test_report_shape(self):
        runner = ParallelRunner(jobs=1, store=None)
        cells = _single_cells()[:1]
        runner.run(cells, label="unit")
        report = runner.last_report
        assert report.cells == 1
        assert report.misses == 1
        # REPRO_BACKEND/REPRO_WORKERS may resize the engine (CI's
        # dist-smoke leg runs this suite under a 2-worker fleet), so pin
        # the report to the engine's effective slot count, not to 1.
        assert report.jobs == runner.jobs
        assert "unit" in report.summary()
        assert "computed" in report.table()

    def test_failed_cells_are_not_cache_misses(self, monkeypatch):
        """Regression: failed cells used to inflate ``misses`` (and so
        deflate ``hit_rate``) as if they had computed a result."""
        from repro.exec.cachekey import stable_hash

        cells = _single_cells()
        victim = stable_hash(cells[0].key_payload())
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"raise:key={victim},times=99")
        engine = ParallelRunner(jobs=1, store=None, verbose=False,
                                on_error="collect")
        engine.run(cells, label="unit")
        report = engine.last_report
        assert report.failed == 1
        assert report.computed == len(cells) - 1
        assert report.misses == len(cells) - 1
        assert report.hit_rate == 0.0
        assert report.hits == 0

    def test_hit_rate_excludes_failures(self, tmp_path, monkeypatch):
        from repro.exec.cachekey import stable_hash
        from repro.exec.store import ResultStore

        cells = _single_cells()
        store = ResultStore(tmp_path / "cache")
        ParallelRunner(jobs=1, store=store, verbose=False).run(cells)
        # Warm store, one cell poisoned: the failure must not drag the
        # hit rate below 100% of *resolved* cells.
        victim = stable_hash(cells[0].key_payload())
        for blob in list(store.root.glob("??/*.json")):
            if blob.stem == victim:
                blob.unlink()
        monkeypatch.setenv("REPRO_FAULT_INJECT",
                           f"raise:key={victim},times=99")
        engine = ParallelRunner(jobs=1, store=store, verbose=False,
                                on_error="collect")
        engine.run(cells, label="unit")
        report = engine.last_report
        assert report.failed == 1
        assert report.hits == len(cells) - 1
        assert report.computed == 0
        assert report.hit_rate == 1.0
