"""Tests for the SDBP, Perceptron, and Hawkeye baselines."""

import pytest

from repro.cache.access import AccessContext
from repro.cache.replacement.lru import LRUPolicy
from repro.predictors.base import SetSampler, partial_tag
from repro.predictors.hawkeye import HawkeyePolicy, HawkeyePredictor, OptGen
from repro.predictors.perceptron import PerceptronPolicy, PerceptronPredictor
from repro.predictors.sdbp import SDBPPolicy, SDBPPredictor
from repro.sim.llc import LLCAccess, LLCSimulator


def ctx(pc=0x400, block=0, history=(), history_index=0):
    return AccessContext(pc=pc, address=block << 6, block=block, offset=0,
                         pc_history=history, history_index=history_index)


def stream(blocks, pcs=None):
    pcs = pcs or [0x400] * len(blocks)
    return [
        LLCAccess(pc=pcs[i], block=b, offset=0, is_write=False,
                  is_prefetch=False, mem_index=i, instr_index=4 * i)
        for i, b in enumerate(blocks)
    ]


class TestSetSampler:
    def test_spreads_samples(self):
        sampler = SetSampler(llc_sets=64, sampler_sets=4)
        sampled = [s for s in range(64) if sampler.sampler_index(s) >= 0]
        assert sampled == [0, 16, 32, 48]

    def test_sampler_indices_dense(self):
        sampler = SetSampler(llc_sets=64, sampler_sets=4)
        indices = sorted(sampler.sampler_index(s) for s in (0, 16, 32, 48))
        assert indices == [0, 1, 2, 3]

    def test_more_samples_than_sets_clamped(self):
        sampler = SetSampler(llc_sets=4, sampler_sets=16)
        assert sampler.sampler_sets == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            SetSampler(64, 0)


class TestPartialTag:
    def test_in_range(self):
        assert 0 <= partial_tag(0xDEADBEEF1234) < (1 << 16)

    def test_distinct_blocks_mostly_distinct_tags(self):
        tags = {partial_tag(b) for b in range(5000)}
        assert len(tags) > 4000


class TestSDBPPredictor:
    def _dead_train(self, predictor, pc, rounds=40):
        """Feed the sampler blocks from ``pc`` that die without reuse."""
        for i in range(rounds):
            predictor._sample(0, ctx(pc=pc, block=1000 + i))

    def test_learns_dead_pc(self):
        predictor = SDBPPredictor(llc_sets=64, sampler_sets=4, sampler_ways=4)
        self._dead_train(predictor, pc=0x500)
        assert predictor.confidence(0x500) > 0

    def test_learns_live_pc(self):
        predictor = SDBPPredictor(llc_sets=64, sampler_sets=4, sampler_ways=4)
        # Same two blocks reused over and over: every sampler access hits.
        for _ in range(40):
            predictor._sample(0, ctx(pc=0x600, block=1))
            predictor._sample(0, ctx(pc=0x600, block=2))
        assert predictor.confidence(0x600) < 0

    def test_counters_saturate(self):
        predictor = SDBPPredictor(llc_sets=64, sampler_sets=4, sampler_ways=2)
        self._dead_train(predictor, pc=0x700, rounds=200)
        assert predictor.predict(0x700) <= predictor.counter_max * 3

    def test_on_llc_access_unsampled_set_trains_nothing(self):
        predictor = SDBPPredictor(llc_sets=64, sampler_sets=4, sampler_ways=4)
        before = [list(t) for t in predictor.tables]
        predictor.on_llc_access(1, ctx(pc=0x500, block=5), hit=False)
        assert predictor.tables == before

    def test_confidence_range_bound(self):
        predictor = SDBPPredictor(llc_sets=64)
        assert abs(predictor.confidence(0x123)) <= predictor.confidence_range


class TestSDBPPolicy:
    def test_bypasses_dead_streams(self):
        # One PC streams blocks that never repeat: SDBP must learn to
        # bypass them.
        policy = SDBPPolicy(4, 4, SDBPPredictor(4, sampler_sets=4, sampler_ways=4))
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        blocks = list(range(100, 400))
        result = sim.run(stream(blocks))
        assert result.stats.bypasses > 0

    def test_tracks_lru_when_untrained(self):
        policy = SDBPPolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        result = sim.run(stream([0, 4, 8, 12] * 2))
        assert result.stats.hits == 4


class TestPerceptronPredictor:
    def test_feature_indices_in_range(self):
        predictor = PerceptronPredictor(llc_sets=64)
        history = [0x400 + 4 * i for i in range(10)]
        indices = predictor.feature_indices(
            ctx(pc=history[5], block=77, history=history, history_index=5))
        assert len(indices) == 6
        assert all(0 <= i < predictor.table_size for i in indices)

    def test_history_features_differ_with_history(self):
        predictor = PerceptronPredictor(llc_sets=64)
        h1 = [0x100, 0x104, 0x108, 0x10C, 0x110]
        h2 = [0x200, 0x204, 0x208, 0x20C, 0x110]
        i1 = predictor.feature_indices(ctx(pc=0x110, block=7, history=h1,
                                           history_index=4))
        i2 = predictor.feature_indices(ctx(pc=0x110, block=7, history=h2,
                                           history_index=4))
        assert i1[0] == i2[0]          # same current PC
        assert i1[1:4] != i2[1:4]      # different history

    def test_learns_dead_blocks(self):
        predictor = PerceptronPredictor(llc_sets=64, sampler_sets=4,
                                        sampler_ways=4, theta=10)
        for i in range(100):
            predictor.on_llc_access(0, ctx(pc=0x500, block=2000 + i), hit=False)
        confidence = predictor.on_llc_access(
            1, ctx(pc=0x500, block=5000), hit=False)
        assert confidence > 0

    def test_learns_live_blocks(self):
        predictor = PerceptronPredictor(llc_sets=64, sampler_sets=4,
                                        sampler_ways=4, theta=10)
        for _ in range(100):
            predictor.on_llc_access(0, ctx(pc=0x600, block=1), hit=True)
            predictor.on_llc_access(0, ctx(pc=0x600, block=2), hit=True)
        confidence = predictor.on_llc_access(1, ctx(pc=0x600, block=3), hit=False)
        assert confidence < 0

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(llc_sets=64, sampler_sets=4,
                                        sampler_ways=2, theta=1000)
        for i in range(500):
            predictor.on_llc_access(0, ctx(pc=0x700, block=3000 + i), hit=False)
        for table in predictor.tables:
            assert all(-32 <= w <= 31 for w in table)

    def test_theta_stops_training(self):
        """Once confident beyond theta, correct predictions stop training."""
        predictor = PerceptronPredictor(llc_sets=64, sampler_sets=4,
                                        sampler_ways=2, theta=5)
        for i in range(300):
            predictor.on_llc_access(0, ctx(pc=0x800, block=4000 + i), hit=False)
        snapshot = [list(t) for t in predictor.tables]
        for i in range(20):
            predictor.on_llc_access(0, ctx(pc=0x800, block=9000 + i), hit=False)
        # Tables may only change where predictions were weak; with one
        # dominant PC the weights are saturated well past theta.
        assert predictor.tables == snapshot


class TestPerceptronPolicy:
    def test_bypasses_streaming(self):
        policy = PerceptronPolicy(
            4, 4, PerceptronPredictor(4, sampler_sets=4, sampler_ways=4, theta=10))
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        result = sim.run(stream(list(range(100, 500))))
        assert result.stats.bypasses > 0

    def test_behaves_like_lru_untrained(self):
        policy = PerceptronPolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        result = sim.run(stream([0, 4, 8, 12] * 2))
        assert result.stats.hits == 4


class TestOptGen:
    def test_short_reuse_is_opt_hit(self):
        optgen = OptGen(ways=2)
        t0 = optgen.advance()
        optgen.advance()
        assert optgen.access(t0) is True

    def test_capacity_pressure_is_opt_miss(self):
        # ways=1: two interleaved reuses cannot both fit.
        optgen = OptGen(ways=1)
        ta = optgen.advance()          # A
        tb = optgen.advance()          # B
        assert optgen.access(ta) is True   # A reused: occupies [ta, now)
        optgen.advance()
        assert optgen.access(tb) is False  # B's interval is now full

    def test_stale_interval_is_miss(self):
        optgen = OptGen(ways=1, window_factor=2)
        t0 = optgen.advance()
        for _ in range(5):
            optgen.advance()
        assert optgen.access(t0) is False

    def test_negative_time_is_miss(self):
        assert OptGen(ways=4).access(-1) is False


class TestHawkeyePredictor:
    def test_friendly_pc_learned(self):
        predictor = HawkeyePredictor(llc_sets=64, llc_ways=4, sampler_sets=4)
        # Tight reuse: OPT hits, PC trained friendly.
        for _ in range(30):
            predictor.on_llc_access(0, ctx(pc=0x500, block=1), hit=True)
            predictor.on_llc_access(0, ctx(pc=0x500, block=2), hit=True)
        assert predictor.is_friendly(0x500)

    def test_averse_pc_learned(self):
        predictor = HawkeyePredictor(llc_sets=64, llc_ways=2, sampler_sets=4)
        # 8 blocks cycling through a 2-way set: OPT misses most reuses.
        for round_ in range(30):
            for b in range(8):
                predictor.on_llc_access(0, ctx(pc=0x600, block=b), hit=False)
        assert not predictor.is_friendly(0x600)

    def test_detrain_lowers_counter(self):
        predictor = HawkeyePredictor(llc_sets=64, llc_ways=4)
        index = predictor._index(0x700)
        before = predictor.counters[index]
        predictor.detrain(0x700)
        assert predictor.counters[index] == before - 1

    def test_history_pruned(self):
        predictor = HawkeyePredictor(llc_sets=64, llc_ways=2, sampler_sets=4)
        for b in range(10_000):
            predictor.on_llc_access(0, ctx(pc=0x800, block=b), hit=False)
        optgen = predictor._optgens[0]
        assert len(predictor._histories[0]) <= 4 * optgen.window + 1


class TestHawkeyePolicy:
    def test_averse_blocks_evicted_first(self):
        policy = HawkeyePolicy(4, 4)
        sim = LLCSimulator(4 * 4 * 64, 4, policy)
        # Mixed workload: hot PC 0x500 reuses 4 blocks; cold PC 0x600
        # streams one-shot blocks through the same sets.
        blocks, pcs = [], []
        hot = [0, 4, 8, 12]
        cold = iter(range(100, 10_000))
        for round_ in range(120):
            for b in hot:
                blocks.append(b)
                pcs.append(0x500)
            for _ in range(2):
                blocks.append(next(cold) * 4)
                pcs.append(0x600)
        result = sim.run(stream(blocks, pcs))
        lru_result = LLCSimulator(4 * 4 * 64, 4, LRUPolicy(4, 4)).run(
            stream(blocks, pcs))
        # Hot blocks must survive the cold stream in steady state,
        # which LRU cannot achieve (the cold stream displaces them).
        hawkeye_tail = sum(result.outcomes[-60:])
        lru_tail = sum(lru_result.outcomes[-60:])
        assert hawkeye_tail > lru_tail + 10

    def test_beats_lru_on_thrash_mix(self):
        hot = [0, 4, 8, 12, 16]  # 5 blocks in set 0 (4 sets, 4 ways)
        blocks, pcs = [], []
        for round_ in range(150):
            for b in hot:
                blocks.append(b)
                pcs.append(0x500 + 4 * (b % 4))
        lru_sim = LLCSimulator(4 * 4 * 64, 4, LRUPolicy(4, 4))
        lru = lru_sim.run(stream(blocks, pcs))
        hawkeye_sim = LLCSimulator(4 * 4 * 64, 4, HawkeyePolicy(4, 4))
        hawkeye = hawkeye_sim.run(stream(blocks, pcs))
        assert lru.stats.hits == 0
        assert hawkeye.stats.hits > 0
