"""Tests for the analytic out-of-order timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.timing import TimingConfig, TimingModel, TimingResult


def simulate(events, instructions, **cfg):
    return TimingModel(TimingConfig(**cfg)).simulate(events, instructions)


class TestTimingConfig:
    def test_defaults_match_paper(self):
        config = TimingConfig()
        assert config.width == 4
        assert config.window == 128
        assert config.dram_latency == 200

    def test_llc_miss_latency(self):
        assert TimingConfig().llc_miss_latency == 230

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            TimingConfig(width=0)


class TestTimingModel:
    def test_compute_bound_ipc_equals_width(self):
        result = simulate([], instructions=4000)
        assert result.ipc == pytest.approx(4.0)

    def test_single_miss_adds_latency(self):
        result = simulate([(0, 230)], instructions=400)
        assert result.cycles == pytest.approx(230.0)

    def test_hit_hidden_under_frontend(self):
        # A 3-cycle L1 hit at instruction 0 finishes long before the
        # front end retires 4000 instructions.
        result = simulate([(0, 3)], instructions=4000)
        assert result.cycles == pytest.approx(1000.0)

    def test_independent_misses_within_window_overlap(self):
        # Two misses 10 instructions apart: second dispatches before the
        # first completes, so total is ~one latency, not two.
        result = simulate([(0, 230), (10, 230)], instructions=300)
        assert result.cycles < 300

    def test_misses_beyond_window_serialize(self):
        # Misses 200 instructions apart (window 128): the second cannot
        # dispatch until the first retires.
        result = simulate([(0, 230), (200, 230)], instructions=300)
        assert result.cycles >= 460

    def test_window_boundary_exact(self):
        # A 128-entry window holds instructions 0..127 together, so a
        # load at index 127 overlaps with one at index 0, while a load
        # at index 128 must wait for instruction 0 to retire.
        cycles_inside = simulate([(0, 230), (127, 230)], instructions=200).cycles
        cycles_outside = simulate([(0, 230), (128, 230)], instructions=200).cycles
        assert cycles_outside > cycles_inside

    def test_mlp_chain_of_overlapping_misses(self):
        # 8 misses each 16 instructions apart all fit in one window.
        events = [(16 * i, 230) for i in range(8)]
        result = simulate(events, instructions=400)
        assert result.cycles < 2 * 230 + 100

    def test_ipc_zero_cycles_guard(self):
        assert TimingResult(cycles=0.0, instructions=0).ipc == 0.0

    def test_more_misses_never_faster(self):
        base_events = [(i * 50, 12) for i in range(10)]
        slow_events = [(i * 50, 230) for i in range(10)]
        fast = simulate(base_events, instructions=1000)
        slow = simulate(slow_events, instructions=1000)
        assert slow.cycles >= fast.cycles

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                              st.sampled_from([3, 12, 30, 230])),
                    max_size=50))
    def test_cycles_at_least_frontend_bound(self, raw_events):
        events = sorted(raw_events)
        instructions = 10_001
        result = simulate(events, instructions=instructions)
        assert result.cycles >= instructions / 4

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=40))
    def test_latency_monotonicity(self, indices):
        """Raising any access latency never reduces total cycles."""
        indices = sorted(indices)
        fast = simulate([(i, 30) for i in indices], instructions=5001)
        slow = simulate([(i, 230) for i in indices], instructions=5001)
        assert slow.cycles >= fast.cycles


class TestSimulatePacked:
    """Column-input variant must stay in lockstep with simulate()."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=4000),
                              st.sampled_from([3, 12, 30, 230]),
                              st.booleans()),
                    max_size=64))
    def test_matches_simulate(self, raw_events):
        events = sorted(raw_events, key=lambda event: event[0])
        model = TimingModel(TimingConfig())
        expected = model.simulate(events, total_instructions=5000)
        packed = model.simulate_packed(
            [event[0] for event in events],
            [event[1] for event in events],
            [event[2] for event in events],
            total_instructions=5000,
        )
        assert packed == expected

    def test_empty_columns(self):
        model = TimingModel(TimingConfig())
        assert (model.simulate_packed([], [], [], 400)
                == model.simulate([], 400))
