"""Unit and property tests for repro.util.hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import combine, hash_to, mix64, pc_hash, skewed_hashes


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_for_nearby_inputs(self):
        outputs = {mix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_in_64_bit_range(self, value):
        assert 0 <= mix64(value) < (1 << 64)


class TestHashTo:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=20))
    def test_in_range(self, value, width):
        assert 0 <= hash_to(value, width) < (1 << width)

    def test_spreads_aligned_values(self):
        # Cache-block-aligned addresses must not all collide.
        indices = {hash_to(i << 6, 8) for i in range(512)}
        assert len(indices) > 200


class TestCombine:
    def test_order_sensitive(self):
        assert combine(1, 2) != combine(2, 1)

    def test_arity_sensitive(self):
        assert combine(1) != combine(1, 0)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    min_size=1, max_size=5))
    def test_deterministic(self, values):
        assert combine(*values) == combine(*values)


class TestPcHash:
    def test_default_width(self):
        assert 0 <= pc_hash(0x401234) < 256

    def test_nearby_pcs_spread(self):
        # Memory PCs are typically 4-byte aligned and clustered.
        indices = {pc_hash(0x400000 + 4 * i) for i in range(256)}
        assert len(indices) > 150


class TestSkewedHashes:
    def test_count_and_range(self):
        hashes = skewed_hashes(0xABCD, 3, 12)
        assert len(hashes) == 3
        assert all(0 <= h < (1 << 12) for h in hashes)

    def test_tables_disagree(self):
        # The three skewed tables must not use identical index functions.
        a = [skewed_hashes(v, 3, 12) for v in range(100)]
        same01 = sum(1 for h in a if h[0] == h[1])
        same02 = sum(1 for h in a if h[0] == h[2])
        assert same01 < 10 and same02 < 10
