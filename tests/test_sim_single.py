"""Tests for the single-thread runner, policy registry, and config."""

import pytest

from repro.config import get_scale
from repro.core.mpppb import MPPPBPolicy
from repro.policies import make_policy, policy_factory, policy_names
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.single import (
    SingleThreadRunner,
    cross_validated_configs,
    speedups_over_lru,
)
from repro.traces.workloads import build_segments, build_suite

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=64, llc_ways=16)
LLC = SMALL.llc_bytes


class TestPolicyRegistry:
    def test_names_cover_paper_policies(self):
        names = policy_names()
        for expected in ("lru", "srrip", "mdpp", "min", "hawkeye",
                         "perceptron", "sdbp", "mpppb-1a", "mpppb-mp"):
            assert expected in names

    @pytest.mark.parametrize("name", ["lru", "srrip", "drrip", "mdpp", "plru",
                                      "random", "min", "sdbp", "perceptron",
                                      "hawkeye", "mpppb-1a", "mpppb-1b",
                                      "mpppb-mp"])
    def test_constructs_with_geometry(self, name):
        policy = make_policy(name, 64, 16)
        assert policy.num_sets == 64
        assert policy.ways == 16

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("clock", 64, 16)

    def test_mpppb_requires_config(self):
        with pytest.raises(ValueError):
            make_policy("mpppb", 64, 16)

    def test_mpppb_with_config(self):
        from repro.core.presets import single_thread_config
        config = single_thread_config("b")
        policy = make_policy("mpppb", 64, 16, mpppb_config=config)
        assert isinstance(policy, MPPPBPolicy)

    def test_factory_curries(self):
        factory = policy_factory("lru")
        assert factory(8, 4).num_sets == 8


class TestScaleConfig:
    def test_named_scales(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("small").name == "small"
        assert get_scale("paper").name == "paper"

    def test_paper_scale_matches_paper_geometry(self):
        paper = get_scale("paper")
        assert paper.hierarchy.llc_kib == 2048      # 2 MB single-thread
        assert paper.multi_hierarchy.llc_kib == 8192  # 8 MB 4-core
        assert paper.hierarchy.l1_kib == 32
        assert paper.hierarchy.l2_kib == 256
        assert paper.mix_count == 1000
        assert paper.train_mix_count == 100
        assert paper.random_feature_sets == 4000

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert get_scale().name == "tiny"

    def test_with_segment_accesses(self):
        scale = get_scale("tiny").with_segment_accesses(123)
        assert scale.segment_accesses == 123


class TestSingleThreadRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return SingleThreadRunner(SMALL, warmup_fraction=0.25)

    @pytest.fixture(scope="class")
    def segments(self):
        return build_segments("gamess", LLC, accesses=4000)

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValueError):
            SingleThreadRunner(SMALL, warmup_fraction=1.0)

    def test_stage1_memoized(self, runner, segments):
        first = runner.upper_result(segments[0])
        second = runner.upper_result(segments[0])
        assert first is second

    def test_segment_result_fields(self, runner, segments):
        result = runner.run_segment(segments[0], policy_factory("lru"))
        assert result.ipc > 0
        assert result.mpki >= 0
        assert result.instructions > 0
        assert result.llc_accesses == result.llc_hits + result.llc_misses

    def test_same_policy_deterministic(self, runner, segments):
        a = runner.run_segment(segments[0], policy_factory("lru"))
        b = runner.run_segment(segments[0], policy_factory("lru"))
        assert a == b

    def test_benchmark_weighted_aggregation(self, runner):
        segments = build_segments("gcc", LLC, accesses=3000)
        result = runner.run_benchmark("gcc", segments, policy_factory("lru"))
        ipcs = [s.ipc for s in result.segments]
        assert min(ipcs) <= result.ipc <= max(ipcs)

    def test_min_never_slower_than_lru(self, runner):
        for name in ("soplex", "mcf", "lbm"):
            segments = build_segments(name, LLC, accesses=6000)
            lru = runner.run_benchmark(name, segments, policy_factory("lru"))
            opt = runner.run_benchmark(name, segments, policy_factory("min"))
            assert opt.mpki <= lru.mpki + 1e-9

    def test_run_suite(self, runner):
        suite = build_suite(LLC, accesses=1500, names=["lbm", "gamess"])
        results = runner.run_suite(suite, policy_factory("lru"))
        assert set(results) == {"lbm", "gamess"}

    def test_speedups_over_lru(self, runner):
        suite = build_suite(LLC, accesses=3000, names=["soplex"])
        lru = runner.run_suite(suite, policy_factory("lru"))
        opt = runner.run_suite(suite, policy_factory("min"))
        speedups = speedups_over_lru(opt, lru)
        assert speedups["soplex"] >= 1.0

    def test_speedups_skip_missing_baselines(self, runner):
        suite = build_suite(LLC, accesses=3000, names=["soplex", "lbm"])
        lru = runner.run_suite({"soplex": suite["soplex"]},
                               policy_factory("lru"))
        opt = runner.run_suite(suite, policy_factory("min"))
        speedups = speedups_over_lru(opt, lru)
        # lbm has no LRU baseline: filtered out, not a KeyError.
        assert set(speedups) == {"soplex"}


class TestStage3Vector:
    """The numpy Stage-3 event path must equal the scalar generator."""

    @pytest.fixture(scope="class")
    def runner(self):
        return SingleThreadRunner(SMALL, warmup_fraction=0.25)

    @pytest.fixture(scope="class")
    def segment(self):
        return build_segments("soplex", LLC, accesses=4000)[0]

    def test_arrays_match_generator(self, runner, segment):
        from repro.sim.llc import LLCSimulator
        from repro.sim.single import (
            build_stage3_events,
            demand_load_arrays,
            demand_load_events,
            stage3_vector_enabled,
        )

        if not stage3_vector_enabled():
            pytest.skip("numpy unavailable")
        upper = runner.upper_result(segment)
        trace = segment.trace
        warm_mem = int(len(trace.pcs) * 0.25)
        policy = policy_factory("lru")(LLC // (16 * 64), 16)
        llc = LLCSimulator(LLC, 16, policy).run(
            upper.llc_stream, pc_trace=trace.pcs,
            warmup=upper.llc_warmup_boundary(warm_mem),
        )
        timing = runner.timing
        events = build_stage3_events(trace, upper, timing,
                                     start_mem=warm_mem)
        instr, latencies, depends = demand_load_arrays(
            events, llc.outcomes, timing)
        expected = list(demand_load_events(trace, upper, llc.outcomes,
                                           timing, start_mem=warm_mem))
        assert list(zip(instr, latencies, depends)) == expected

    def test_run_segment_knob_equivalence(self, segment, monkeypatch):
        results = {}
        for mode in ("on", "off"):
            monkeypatch.setenv("REPRO_STAGE3_VECTOR", mode)
            fresh = SingleThreadRunner(SMALL, warmup_fraction=0.25)
            results[mode] = fresh.run_segment(segment,
                                              policy_factory("lru"))
        assert results["on"] == results["off"]


class TestCrossValidation:
    def test_halves_get_opposite_tables(self):
        names = ["a", "b", "c", "d"]
        configs = cross_validated_configs(names)
        # First half evaluates with set (b), second with set (a).
        from repro.core.presets import table_1a_features, table_1b_features
        assert configs["a"].features == table_1b_features()
        assert configs["d"].features == table_1a_features()

    def test_all_names_assigned(self):
        from repro.traces.workloads import benchmark_names
        configs = cross_validated_configs(benchmark_names())
        assert set(configs) == set(benchmark_names())

    def test_odd_suite_sorts_then_splits(self):
        from repro.core.presets import table_1a_features, table_1b_features
        # Unsorted odd-length input: assignment follows alphabetical
        # order, and the middle name lands in the (a)-trained half.
        configs = cross_validated_configs(["e", "a", "c"])
        assert configs["a"].features == table_1b_features()
        assert configs["c"].features == table_1a_features()
        assert configs["e"].features == table_1a_features()
