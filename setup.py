"""Legacy setup shim: enables editable installs where the offline
environment lacks the ``wheel`` package needed by PEP 517 builds."""

from setuptools import setup

setup()
